//! Total (panic-free) byte-slice helpers for on-disk format code.
//!
//! The recovery path (`cargo xtask analyze` proves it) must not contain
//! indexing, `copy_from_slice`, or other length-checked std calls that
//! panic on bad input. These helpers are total: out-of-bounds requests
//! degrade to an empty/short slice or `None`, which format code already
//! treats as corruption (a short slice fails the magic/CRC/length check
//! it feeds). That keeps "corrupt file" an `Err`, never an abort, without
//! scattering `trusted` waivers across the crate.

/// The sub-slice `b[off .. off + len]`, or a shorter (possibly empty)
/// slice when the range leaves `b`.
pub(crate) fn sub(b: &[u8], off: usize, len: usize) -> &[u8] {
    let start = off.min(b.len());
    let end = off.saturating_add(len).min(b.len());
    b.get(start..end).unwrap_or(&[])
}

/// Little-endian `u32` at `off`; `None` when fewer than four bytes remain.
pub(crate) fn le32(b: &[u8], off: usize) -> Option<u32> {
    let s = b.get(off..off.checked_add(4)?)?;
    let arr: [u8; 4] = s.try_into().ok()?;
    Some(u32::from_le_bytes(arr))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sub_is_total() {
        let b = [1u8, 2, 3, 4];
        assert_eq!(sub(&b, 1, 2), &[2, 3]);
        assert_eq!(sub(&b, 3, 10), &[4]);
        assert_eq!(sub(&b, 9, 2), &[] as &[u8]);
        assert_eq!(sub(&b, usize::MAX, usize::MAX), &[] as &[u8]);
    }

    #[test]
    fn le32_reads_and_rejects() {
        let b = [0x78u8, 0x56, 0x34, 0x12, 0xff];
        assert_eq!(le32(&b, 0), Some(0x1234_5678));
        assert_eq!(le32(&b, 2), None);
        assert_eq!(le32(&b, usize::MAX), None);
    }
}
