//! A sharded clock-eviction buffer pool over the [`Pager`].
//!
//! The B+-tree reads `O(depth)` pages per operation and rewrites the same
//! leaves over and over during bulk index updates; the pool keeps hot pages
//! in memory and defers writes until commit or eviction. Deferred writes
//! compose correctly with the rollback journal: the disk image of a page is
//! untouched until its first flush inside the transaction, which is exactly
//! when the pager captures it in the journal.
//!
//! # Sharding
//!
//! Frames live in `N` shards (a power of two, derived from the capacity),
//! each behind its own mutex and keyed by the low bits of the [`PageId`].
//! A lookup touching shard `i` never contends with a lookup touching shard
//! `j ≠ i`; the pager itself sits behind a separate mutex that is only
//! taken on a cache miss, an eviction write-back, or a transaction edge.
//!
//! The lock order is **shard → pager**, always. A thread holding the pager
//! lock never takes a shard lock, so the pair cannot deadlock. Cache-miss
//! reads release the shard lock across the page I/O and re-check on
//! re-entry, so a slow read does not serialize the rest of the shard. The
//! fields carry `// analyze: lock-class(...)` markers and the order is
//! machine-checked by the lock-discipline pass of `cargo xtask analyze`
//! (DESIGN.md §12), including the one sanctioned overlap: `flush_dirty`
//! and `pick_victim` hold a shard lock across the pager write-back *by
//! design* — releasing it first would let a reader fault the stale
//! on-disk image back in.
//!
//! # Read path
//!
//! Frames hold their page behind an [`Arc`]; [`BufferPool::with_page`]
//! clones the `Arc` under the shard lock and runs the caller's closure
//! *outside* every pool lock. Two readers — even of the same shard, even
//! when one parks inside its closure — always make progress. Writers clone
//! the payload on demand (`Arc::make_mut`), so an in-flight reader keeps an
//! immutable snapshot while the writer updates the cached frame. The read
//! path never writes: a cache miss installs through
//! [`BufferPool::install_clean`], which skips dirty frames in its sweep
//! and serves the page uncached rather than write anything back — so
//! shared read-only handles ([`crate::IndexStoreReader`]) provably never
//! reach the pager's mutating surface.
//!
//! # Concurrency contract
//!
//! The pool is internally synchronized (callers use `&self`); the engine's
//! write path is single-writer by construction (`&mut` on the stores, or an
//! exclusively-owned store before an `IndexStoreReader` is split off), but
//! read-only lookups may share the pool across any number of threads.

use crate::page::{PageBuf, PageId};
use crate::pager::{Pager, Result, StoreError};
use parking_lot::Mutex;
use pqgram_tree::FxHashMap;
use std::sync::Arc;

struct Frame {
    id: PageId,
    page: Arc<PageBuf>,
    dirty: bool,
    referenced: bool,
}

/// One cache shard: a clock over its own frames. Never touches the pager —
/// anything that needs I/O lives on [`BufferPool`] so the shard → pager
/// lock order is visible at the call sites.
struct Shard {
    frames: Vec<Frame>,
    by_id: FxHashMap<PageId, usize>,
    clock: usize,
}

impl Shard {
    /// Snapshot of a cached page, bumping its clock reference bit.
    fn hit(&mut self, id: PageId) -> Option<Arc<PageBuf>> {
        let &slot = self.by_id.get(&id)?;
        let frame = self.frames.get_mut(slot)?;
        frame.referenced = true;
        Some(Arc::clone(&frame.page))
    }

    /// The frame at `slot`, or `Corrupt` if the slot map and frame table
    /// ever disagree (they cannot, absent a bug in this module).
    fn frame_mut(&mut self, slot: usize) -> Result<&mut Frame> {
        self.frames
            .get_mut(slot)
            .ok_or_else(|| StoreError::Corrupt(format!("buffer frame {slot} out of range")))
    }
}

/// Sharded buffer pool; owns the pager.
pub struct BufferPool {
    // analyze: lock-class(pager)
    pager: Mutex<Pager>,
    // analyze: lock-class(shard)
    shards: Box<[Mutex<Shard>]>,
    /// `shards.len() - 1`; shard count is a power of two.
    shard_mask: usize,
    /// Frame budget per shard; totals at most the requested capacity.
    per_shard: usize,
}

/// Default cache capacity (pages): 4 MiB.
pub const DEFAULT_CAPACITY: usize = 1024;

/// Ceiling on the shard count — past this, shard mutexes stop paying for
/// their footprint on the thread counts the engine targets.
const MAX_SHARDS: usize = 16;

/// Minimum frames per shard; a shard smaller than this would thrash its
/// clock on a single B+-tree root-to-leaf path.
const MIN_SHARD_CAPACITY: usize = 8;

impl BufferPool {
    /// Wraps a pager with a cache of `capacity` pages (floored at
    /// [`MIN_SHARD_CAPACITY`]), split over the largest power-of-two shard
    /// count that keeps every shard at least that minimum.
    pub fn new(pager: Pager, capacity: usize) -> Self {
        let capacity = capacity.max(MIN_SHARD_CAPACITY);
        let mut count = 1;
        while count < MAX_SHARDS && count * 2 * MIN_SHARD_CAPACITY <= capacity {
            count *= 2;
        }
        let shards = (0..count)
            .map(|_| {
                Mutex::new(Shard {
                    frames: Vec::new(),
                    by_id: FxHashMap::default(),
                    clock: 0,
                })
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        BufferPool {
            pager: Mutex::new(pager),
            shards,
            shard_mask: count - 1,
            per_shard: capacity / count,
        }
    }

    /// The shard responsible for `id` (low bits of the page number).
    fn shard_for(&self, id: PageId) -> Result<&Mutex<Shard>> {
        let at = id.index() & self.shard_mask;
        self.shards
            .get(at)
            .ok_or_else(|| StoreError::Corrupt(format!("buffer shard {at} out of range")))
    }

    /// An `Arc` snapshot of the page, faulting it in on a miss. The shard
    /// lock is *not* held across the pager read, and the caller holds no
    /// pool lock at all once the snapshot is returned.
    fn snapshot(&self, id: PageId) -> Result<Arc<PageBuf>> {
        let shard = self.shard_for(id)?;
        if let Some(page) = shard.lock().hit(id) {
            return Ok(page);
        }
        // Miss: do the I/O without the shard lock so readers of other
        // pages in this shard are not serialized behind it.
        let page = {
            let mut pager = self.pager.lock();
            pager.read_page(id)?
        };
        let mut guard = shard.lock();
        if let Some(raced) = guard.hit(id) {
            // Another thread installed the page while we were reading.
            return Ok(raced);
        }
        let page = Arc::new(page);
        self.install_clean(&mut guard, id, Arc::clone(&page));
        Ok(page)
    }

    /// Runs `f` against a read-only view of the page. `f` runs outside all
    /// pool locks: it may block without stalling any other reader.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&PageBuf) -> R) -> Result<R> {
        let page = self.snapshot(id)?;
        Ok(f(&page))
    }

    /// Runs `f` against a mutable view of the page and marks it dirty.
    ///
    /// `f` runs *outside* every pool lock, against a private copy-on-write
    /// clone of the page (`Arc::make_mut`); the result is swapped into the
    /// cached frame under the shard lock afterwards. Losing an interleaved
    /// update is impossible because the engine's write path is
    /// single-writer by contract (readers never mutate frame payloads);
    /// concurrent readers of the same page keep their pre-write snapshots.
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut PageBuf) -> R) -> Result<R> {
        let mut page = self.snapshot(id)?;
        let out = f(Arc::make_mut(&mut page));
        let shard = self.shard_for(id)?;
        let mut guard = shard.lock();
        match guard.by_id.get(&id).copied() {
            Some(slot) => {
                let frame = guard.frame_mut(slot)?;
                frame.page = page;
                frame.dirty = true;
                frame.referenced = true;
            }
            None => {
                // The frame was evicted (or never cached) while `f` ran;
                // install the mutated page as a fresh dirty frame.
                self.install(&mut guard, id, page, true)?;
            }
        }
        Ok(out)
    }

    /// Allocates a fresh page (cached as an all-zero dirty frame).
    pub fn allocate(&self) -> Result<PageId> {
        let id = {
            let mut pager = self.pager.lock();
            pager.allocate()?
        };
        // Pager lock released before the shard lock: lock order is
        // shard → pager, never the reverse.
        let shard = self.shard_for(id)?;
        let mut guard = shard.lock();
        self.install(&mut guard, id, Arc::new(PageBuf::zeroed()), true)?;
        Ok(id)
    }

    /// Frees a page, dropping any cached frame.
    pub fn free(&self, id: PageId) -> Result<()> {
        let shard = self.shard_for(id)?;
        {
            let mut guard = shard.lock();
            if let Some(slot) = guard.by_id.remove(&id) {
                if let Some(frame) = guard.frames.get_mut(slot) {
                    frame.id = PageId::NONE;
                    frame.dirty = false;
                }
            }
        }
        let mut pager = self.pager.lock();
        pager.free(id)
    }

    /// Reads a user metadata slot. The value is raw header-page state off
    /// disk: callers must validate it before it steers a page id, length,
    /// or allocation.
    // analyze: untrusted-source
    pub fn meta(&self, slot: usize) -> u64 {
        let pager = self.pager.lock();
        pager.meta(slot)
    }

    /// Writes a user metadata slot.
    pub fn set_meta(&self, slot: usize, value: u64) -> Result<()> {
        let mut pager = self.pager.lock();
        pager.set_meta(slot, value)
    }

    /// Number of pages in the underlying file.
    pub fn page_count(&self) -> u32 {
        let pager = self.pager.lock();
        pager.page_count()
    }

    /// Number of frames currently cached across all shards — never exceeds
    /// the capacity the pool was built with.
    pub fn resident_pages(&self) -> usize {
        let mut total = 0;
        for shard in self.shards.iter() {
            total += shard.lock().frames.len();
        }
        total
    }

    /// Starts a transaction (flushes pending writes first so the journal
    /// sees the logical pre-transaction state).
    // analyze: txn-boundary
    pub fn begin(&self) -> Result<()> {
        self.flush_dirty()?;
        let mut pager = self.pager.lock();
        pager.begin()
    }

    /// Commits: flush dirty frames, sync, retire journal.
    pub fn commit(&self) -> Result<()> {
        self.flush_dirty()?;
        let mut pager = self.pager.lock();
        pager.commit()
    }

    /// Rolls back: drop all cached frames (they may hold uncommitted data),
    /// then restore the file.
    pub fn rollback(&self) -> Result<()> {
        for shard in self.shards.iter() {
            let mut guard = shard.lock();
            guard.frames.clear();
            guard.by_id.clear();
            guard.clock = 0;
        }
        let mut pager = self.pager.lock();
        pager.rollback()
    }

    /// Flushes all dirty frames (no transaction semantics).
    pub fn flush(&self) -> Result<()> {
        self.flush_dirty()
    }

    /// Flushes all dirty frames and syncs the underlying file — the
    /// durability barrier a bootstrap bulk load needs before any other file
    /// (a manifest, say) is allowed to reference the one being built.
    pub fn sync(&self) -> Result<()> {
        self.flush_dirty()?;
        let mut pager = self.pager.lock();
        pager.sync_file()
    }

    /// True while a transaction is open.
    pub fn in_transaction(&self) -> bool {
        let pager = self.pager.lock();
        pager.in_transaction()
    }

    /// Runs [`Pager::validate`] — the structural audit of the header and
    /// free list — on the underlying pager. Free pages are never cached, so
    /// no flush is needed for the walk to see the logical state.
    pub fn validate_pager(&self) -> Result<u32> {
        let mut pager = self.pager.lock();
        pager.validate()
    }

    /// Installs a clean page on the read path. **Never performs I/O**: the
    /// clock sweep skips dirty frames (a reader must not write pages back
    /// — that is the writer's, and only the writer's, job), and when every
    /// frame is dirty or hot the page is simply not cached — the caller
    /// already holds its `Arc` snapshot, so correctness is unaffected.
    fn install_clean(&self, shard: &mut Shard, id: PageId, page: Arc<PageBuf>) {
        if shard.by_id.contains_key(&id) {
            return;
        }
        if shard.frames.len() < self.per_shard {
            shard.frames.push(Frame {
                id,
                page,
                dirty: false,
                referenced: true,
            });
            shard.by_id.insert(id, shard.frames.len() - 1);
            return;
        }
        let n = shard.frames.len();
        for _ in 0..n * 2 {
            let slot = shard.clock;
            shard.clock = (shard.clock + 1) % n;
            let Some(frame) = shard.frames.get_mut(slot) else {
                shard.clock = 0;
                continue;
            };
            if frame.dirty {
                continue;
            }
            if frame.referenced {
                frame.referenced = false;
                continue;
            }
            let old_id = frame.id;
            *frame = Frame {
                id,
                page,
                dirty: false,
                referenced: true,
            };
            if old_id != PageId::NONE {
                shard.by_id.remove(&old_id);
            }
            shard.by_id.insert(id, slot);
            return;
        }
    }

    /// Installs a page into `shard`, evicting if the shard is at budget.
    /// Writer-path only (readers go through [`Self::install_clean`]).
    /// Caller holds the shard lock; the pager lock is taken only for a
    /// dirty victim's write-back (shard → pager order).
    fn install(
        &self,
        shard: &mut Shard,
        id: PageId,
        page: Arc<PageBuf>,
        dirty: bool,
    ) -> Result<usize> {
        if let Some(&slot) = shard.by_id.get(&id) {
            // Re-install over an existing frame (e.g. allocate of a freed,
            // still-cached page).
            *shard.frame_mut(slot)? = Frame {
                id,
                page,
                dirty,
                referenced: true,
            };
            return Ok(slot);
        }
        let slot = if shard.frames.len() < self.per_shard {
            shard.frames.push(Frame {
                id,
                page,
                dirty,
                referenced: true,
            });
            shard.frames.len() - 1
        } else {
            let victim = self.pick_victim(shard)?;
            let old = std::mem::replace(
                shard.frame_mut(victim)?,
                Frame {
                    id,
                    page,
                    dirty,
                    referenced: true,
                },
            );
            if old.id != PageId::NONE {
                shard.by_id.remove(&old.id);
            }
            victim
        };
        shard.by_id.insert(id, slot);
        Ok(slot)
    }

    /// Clock sweep over one shard; flushes a dirty victim before eviction.
    ///
    /// The write-back below targets a frame some writer dirtied *inside* the
    /// transaction that is still open (deferred writes never outlive their
    /// transaction: begin/commit/rollback all drain or drop them), so its
    /// original image is already journaled by the pager.
    // analyze: txn-exempt(evicting a dirty frame re-writes a page first written inside the transaction that dirtied it; the pager journals it on first overwrite)
    fn pick_victim(&self, shard: &mut Shard) -> Result<usize> {
        let n = shard.frames.len();
        if n == 0 {
            return Err(StoreError::InvalidArgument("buffer shard empty".into()));
        }
        for _ in 0..n * 2 + 1 {
            let slot = shard.clock;
            shard.clock = (shard.clock + 1) % n;
            let Some(frame) = shard.frames.get_mut(slot) else {
                shard.clock = 0;
                continue;
            };
            if frame.referenced {
                frame.referenced = false;
                continue;
            }
            if frame.dirty && frame.id != PageId::NONE {
                let mut pager = self.pager.lock();
                pager.write_page(frame.id, &frame.page)?;
                frame.dirty = false;
            }
            return Ok(slot);
        }
        Err(StoreError::InvalidArgument("buffer shard exhausted".into()))
    }

    // analyze: txn-exempt(drains frames dirtied under the currently open transaction — or pre-transaction bootstrap writes on a store no reader has opened yet)
    fn flush_dirty(&self) -> Result<()> {
        for shard in self.shards.iter() {
            let mut guard = shard.lock();
            let mut pager = self.pager.lock();
            for frame in guard.frames.iter_mut() {
                if frame.dirty && frame.id != PageId::NONE {
                    pager.write_page(frame.id, &frame.page)?;
                    frame.dirty = false;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pqgram-pool-{}", std::process::id()));
        std::fs::create_dir_all(&dir).ok();
        let p = dir.join(name);
        std::fs::remove_file(&p).ok();
        let mut j = p.as_os_str().to_owned();
        j.push("-journal");
        std::fs::remove_file(PathBuf::from(j)).ok();
        p
    }

    #[test]
    fn cached_reads_see_writes() -> Result<()> {
        let pool = BufferPool::new(Pager::create(&tmp("rw.db"))?, 16);
        let id = pool.allocate()?;
        pool.with_page_mut(id, |p| p.put_u64(0, 42))?;
        let got = pool.with_page(id, |p| p.get_u64(0))?;
        assert_eq!(got, 42);
        Ok(())
    }

    #[test]
    fn eviction_flushes_dirty_pages() -> Result<()> {
        let path = tmp("evict.db");
        let pool = BufferPool::new(Pager::create(&path)?, 8);
        // Write through far more pages than the pool holds.
        let ids: Vec<PageId> = (0..50).map(|_| pool.allocate()).collect::<Result<_>>()?;
        for (i, &id) in ids.iter().enumerate() {
            pool.with_page_mut(id, |p| p.put_u64(0, i as u64))?;
        }
        for (i, &id) in ids.iter().enumerate() {
            let got = pool.with_page(id, |p| p.get_u64(0))?;
            assert_eq!(got, i as u64, "page {id:?}");
        }
        Ok(())
    }

    #[test]
    fn transaction_rollback_through_pool() -> Result<()> {
        let path = tmp("txpool.db");
        let pool = BufferPool::new(Pager::create(&path)?, 8);
        let id = pool.allocate()?;
        pool.with_page_mut(id, |p| p.put_u64(0, 1))?;
        pool.flush()?;

        pool.begin()?;
        pool.with_page_mut(id, |p| p.put_u64(0, 2))?;
        // Force the dirty page to disk (inside the tx) via many allocations.
        for _ in 0..40 {
            pool.allocate()?;
        }
        pool.rollback()?;
        assert_eq!(pool.with_page(id, |p| p.get_u64(0))?, 1);
        assert_eq!(pool.page_count(), 2);
        Ok(())
    }

    #[test]
    fn commit_then_reopen() -> Result<()> {
        let path = tmp("commitpool.db");
        {
            let pool = BufferPool::new(Pager::create(&path)?, 8);
            pool.begin()?;
            let id = pool.allocate()?;
            pool.with_page_mut(id, |p| p.put_u64(8, 0xfeed))?;
            pool.set_meta(3, 33)?;
            pool.commit()?;
        }
        let pool = BufferPool::new(Pager::open(&path)?, 8);
        assert_eq!(pool.meta(3), 33);
        assert_eq!(pool.with_page(PageId(1), |p| p.get_u64(8))?, 0xfeed);
        Ok(())
    }

    #[test]
    fn free_and_reuse_through_pool() -> Result<()> {
        let pool = BufferPool::new(Pager::create(&tmp("freepool.db"))?, 8);
        let a = pool.allocate()?;
        pool.with_page_mut(a, |p| p.put_u64(0, 7))?;
        pool.free(a)?;
        let b = pool.allocate()?;
        assert_eq!(a, b);
        // Fresh allocation must be zeroed, not show stale cache content.
        assert_eq!(pool.with_page(b, |p| p.get_u64(0))?, 0);
        Ok(())
    }

    /// A reader parked inside its `with_page` closure must not block a
    /// second reader — even one targeting the *same shard* (capacity 8
    /// forces a single shard, the strongest version of the claim).
    #[test]
    fn parked_reader_does_not_block_other_readers() -> Result<()> {
        use std::sync::mpsc;
        let pool = BufferPool::new(Pager::create(&tmp("mt.db"))?, 8);
        let a = pool.allocate()?;
        let b = pool.allocate()?;
        pool.with_page_mut(a, |p| p.put_u64(0, 1))?;
        pool.with_page_mut(b, |p| p.put_u64(0, 2))?;

        let (entered_tx, entered_rx) = mpsc::channel::<()>();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let pool = &pool;
        std::thread::scope(|scope| -> Result<()> {
            let parked = scope.spawn(move || {
                pool.with_page(a, |p| {
                    entered_tx.send(()).ok();
                    // Park until the main thread has finished its read.
                    release_rx.recv().ok();
                    p.get_u64(0)
                })
            });
            entered_rx
                .recv_timeout(std::time::Duration::from_secs(10))
                .map_err(|_| StoreError::InvalidArgument("first reader never started".into()))?;
            // The first reader is now parked inside its closure. If the
            // closure ran under a pool lock, this read would deadlock.
            assert_eq!(pool.with_page(b, |p| p.get_u64(0))?, 2);
            release_tx.send(()).ok();
            match parked.join() {
                Ok(got) => assert_eq!(got?, 1),
                Err(_) => return Err(StoreError::InvalidArgument("reader panicked".into())),
            }
            Ok(())
        })
    }

    /// Random multi-shard traffic on a capacity-K pool: the pool never
    /// holds more than K frames, and no dirty page is ever evicted without
    /// going through the journal — observable because rollback must restore
    /// every page exactly, which only works if each eviction write-back was
    /// journaled by the pager first.
    #[test]
    fn capacity_and_journal_hold_under_random_access() -> Result<()> {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x5eed);
        for &capacity in &[8usize, 16, 24, 64] {
            let path = tmp(&format!("prop{capacity}.db"));
            let pool = BufferPool::new(Pager::create(&path)?, capacity);
            let ids: Vec<PageId> = (0..120).map(|_| pool.allocate()).collect::<Result<_>>()?;
            let mut stamp: u64 = 0;
            let mut expect = Vec::new();
            for &id in &ids {
                stamp += 1;
                pool.with_page_mut(id, |p| p.put_u64(0, stamp))?;
                expect.push(stamp);
            }
            pool.flush()?;

            pool.begin()?;
            for round in 0..600 {
                let at = rng.random_range(0..ids.len());
                let (id, want) = match (ids.get(at), expect.get(at)) {
                    (Some(&id), Some(&want)) => (id, want),
                    _ => continue,
                };
                if rng.random_bool(0.5) {
                    stamp += 1;
                    pool.with_page_mut(id, |p| p.put_u64(0, stamp))?;
                } else {
                    // Reads see either the pre-tx value or some in-tx stamp.
                    let got = pool.with_page(id, |p| p.get_u64(0))?;
                    assert!(
                        got == want || got > u64::try_from(ids.len()).unwrap_or(0),
                        "round {round}: page {id:?} read {got}, expected {want} or an in-tx stamp"
                    );
                }
                let resident = pool.resident_pages();
                assert!(
                    resident <= capacity,
                    "capacity {capacity} exceeded: {resident} frames resident"
                );
            }
            pool.rollback()?;
            for (&id, &want) in ids.iter().zip(&expect) {
                assert_eq!(
                    pool.with_page(id, |p| p.get_u64(0))?,
                    want,
                    "rollback lost the journaled image of {id:?} (capacity {capacity})"
                );
            }
        }
        Ok(())
    }
}
