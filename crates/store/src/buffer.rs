//! A clock-eviction buffer pool over the [`Pager`].
//!
//! The B+-tree reads `O(depth)` pages per operation and rewrites the same
//! leaves over and over during bulk index updates; the pool keeps hot pages
//! in memory and defers writes until commit or eviction. Deferred writes
//! compose correctly with the rollback journal: the disk image of a page is
//! untouched until its first flush inside the transaction, which is exactly
//! when the pager captures it in the journal.
//!
//! The pool is internally synchronized (callers use `&self`); the engine's
//! write path is single-writer by construction (`&mut` on the stores), but
//! read-only lookups may share the pool across threads.

use crate::page::{PageBuf, PageId};
use crate::pager::{Pager, Result, StoreError};
use parking_lot::Mutex;
use pqgram_tree::FxHashMap;

struct Frame {
    id: PageId,
    page: PageBuf,
    dirty: bool,
    referenced: bool,
}

struct Inner {
    pager: Pager,
    frames: Vec<Frame>,
    by_id: FxHashMap<PageId, usize>,
    clock: usize,
    capacity: usize,
}

/// Buffer pool; owns the pager.
pub struct BufferPool {
    inner: Mutex<Inner>,
}

/// Default cache capacity (pages): 4 MiB.
pub const DEFAULT_CAPACITY: usize = 1024;

impl BufferPool {
    /// Wraps a pager with a cache of `capacity` pages.
    pub fn new(pager: Pager, capacity: usize) -> Self {
        BufferPool {
            inner: Mutex::new(Inner {
                pager,
                frames: Vec::new(),
                by_id: FxHashMap::default(),
                clock: 0,
                capacity: capacity.max(8),
            }),
        }
    }

    /// Runs `f` against a read-only view of the page.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&PageBuf) -> R) -> Result<R> {
        let mut inner = self.inner.lock();
        let slot = inner.load(id)?;
        let frame = inner.frame_mut(slot)?;
        frame.referenced = true;
        Ok(f(&frame.page))
    }

    /// Runs `f` against a mutable view of the page and marks it dirty.
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut PageBuf) -> R) -> Result<R> {
        let mut inner = self.inner.lock();
        let slot = inner.load(id)?;
        let frame = inner.frame_mut(slot)?;
        frame.referenced = true;
        frame.dirty = true;
        Ok(f(&mut frame.page))
    }

    /// Allocates a fresh page (cached as an all-zero dirty frame).
    pub fn allocate(&self) -> Result<PageId> {
        let mut inner = self.inner.lock();
        let id = inner.pager.allocate()?;
        inner.install(id, PageBuf::zeroed(), true)?;
        Ok(id)
    }

    /// Frees a page, dropping any cached frame.
    pub fn free(&self, id: PageId) -> Result<()> {
        let mut inner = self.inner.lock();
        if let Some(slot) = inner.by_id.remove(&id) {
            if let Some(frame) = inner.frames.get_mut(slot) {
                frame.id = PageId::NONE;
                frame.dirty = false;
            }
        }
        inner.pager.free(id)
    }

    /// Reads a user metadata slot.
    pub fn meta(&self, slot: usize) -> u64 {
        self.inner.lock().pager.meta(slot)
    }

    /// Writes a user metadata slot.
    pub fn set_meta(&self, slot: usize, value: u64) -> Result<()> {
        self.inner.lock().pager.set_meta(slot, value)
    }

    /// Number of pages in the underlying file.
    pub fn page_count(&self) -> u32 {
        self.inner.lock().pager.page_count()
    }

    /// Starts a transaction (flushes pending writes first so the journal
    /// sees the logical pre-transaction state).
    // analyze: txn-boundary
    pub fn begin(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.flush_dirty()?;
        inner.pager.begin()
    }

    /// Commits: flush dirty frames, sync, retire journal.
    pub fn commit(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.flush_dirty()?;
        inner.pager.commit()
    }

    /// Rolls back: drop all cached frames (they may hold uncommitted data),
    /// then restore the file.
    pub fn rollback(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.frames.clear();
        inner.by_id.clear();
        inner.clock = 0;
        inner.pager.rollback()
    }

    /// Flushes all dirty frames (no transaction semantics).
    pub fn flush(&self) -> Result<()> {
        self.inner.lock().flush_dirty()
    }

    /// True while a transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.inner.lock().pager.in_transaction()
    }

    /// Runs [`Pager::validate`] — the structural audit of the header and
    /// free list — on the underlying pager. Free pages are never cached, so
    /// no flush is needed for the walk to see the logical state.
    pub fn validate_pager(&self) -> Result<u32> {
        self.inner.lock().pager.validate()
    }
}

impl Inner {
    /// The frame at `slot`, or `Corrupt` if the slot map and frame table
    /// ever disagree (they cannot, absent a bug in this module).
    fn frame_mut(&mut self, slot: usize) -> Result<&mut Frame> {
        self.frames
            .get_mut(slot)
            .ok_or_else(|| StoreError::Corrupt(format!("buffer frame {slot} out of range")))
    }

    fn load(&mut self, id: PageId) -> Result<usize> {
        if let Some(&slot) = self.by_id.get(&id) {
            return Ok(slot);
        }
        let page = self.pager.read_page(id)?;
        self.install(id, page, false)
    }

    fn install(&mut self, id: PageId, page: PageBuf, dirty: bool) -> Result<usize> {
        if let Some(&slot) = self.by_id.get(&id) {
            // Re-install over an existing frame (e.g. allocate of a freed,
            // still-cached page).
            *self.frame_mut(slot)? = Frame {
                id,
                page,
                dirty,
                referenced: true,
            };
            return Ok(slot);
        }
        let slot = if self.frames.len() < self.capacity {
            self.frames.push(Frame {
                id,
                page,
                dirty,
                referenced: true,
            });
            self.frames.len() - 1
        } else {
            let victim = self.pick_victim()?;
            let old = std::mem::replace(
                self.frame_mut(victim)?,
                Frame {
                    id,
                    page,
                    dirty,
                    referenced: true,
                },
            );
            if old.id != PageId::NONE {
                self.by_id.remove(&old.id);
            }
            victim
        };
        self.by_id.insert(id, slot);
        Ok(slot)
    }

    /// Clock sweep; flushes a dirty victim before eviction.
    ///
    /// The write-back below targets a frame some writer dirtied *inside* the
    /// transaction that is still open (deferred writes never outlive their
    /// transaction: begin/commit/rollback all drain or drop them), so its
    /// original image is already journaled by the pager.
    // analyze: txn-exempt(evicting a dirty frame re-writes a page first written inside the transaction that dirtied it; the pager journals it on first overwrite)
    fn pick_victim(&mut self) -> Result<usize> {
        let n = self.frames.len();
        if n == 0 {
            return Err(StoreError::InvalidArgument("buffer pool empty".into()));
        }
        for _ in 0..n * 2 + 1 {
            let slot = self.clock;
            self.clock = (self.clock + 1) % n;
            let Some(frame) = self.frames.get_mut(slot) else {
                self.clock = 0;
                continue;
            };
            if frame.referenced {
                frame.referenced = false;
                continue;
            }
            if frame.dirty && frame.id != PageId::NONE {
                self.pager.write_page(frame.id, &frame.page)?;
                frame.dirty = false;
            }
            return Ok(slot);
        }
        Err(StoreError::InvalidArgument("buffer pool exhausted".into()))
    }

    // analyze: txn-exempt(drains frames dirtied under the currently open transaction — or pre-transaction bootstrap writes on a store no reader has opened yet)
    fn flush_dirty(&mut self) -> Result<()> {
        for slot in 0..self.frames.len() {
            let (id, page) = match self.frames.get(slot) {
                Some(f) if f.dirty && f.id != PageId::NONE => (f.id, f.page.clone()),
                _ => continue,
            };
            self.pager.write_page(id, &page)?;
            if let Some(f) = self.frames.get_mut(slot) {
                f.dirty = false;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pqgram-pool-{}", std::process::id()));
        std::fs::create_dir_all(&dir).ok();
        let p = dir.join(name);
        std::fs::remove_file(&p).ok();
        let mut j = p.as_os_str().to_owned();
        j.push("-journal");
        std::fs::remove_file(PathBuf::from(j)).ok();
        p
    }

    #[test]
    fn cached_reads_see_writes() -> Result<()> {
        let pool = BufferPool::new(Pager::create(&tmp("rw.db"))?, 16);
        let id = pool.allocate()?;
        pool.with_page_mut(id, |p| p.put_u64(0, 42))?;
        let got = pool.with_page(id, |p| p.get_u64(0))?;
        assert_eq!(got, 42);
        Ok(())
    }

    #[test]
    fn eviction_flushes_dirty_pages() -> Result<()> {
        let path = tmp("evict.db");
        let pool = BufferPool::new(Pager::create(&path)?, 8);
        // Write through far more pages than the pool holds.
        let ids: Vec<PageId> = (0..50).map(|_| pool.allocate()).collect::<Result<_>>()?;
        for (i, &id) in ids.iter().enumerate() {
            pool.with_page_mut(id, |p| p.put_u64(0, i as u64))?;
        }
        for (i, &id) in ids.iter().enumerate() {
            let got = pool.with_page(id, |p| p.get_u64(0))?;
            assert_eq!(got, i as u64, "page {id:?}");
        }
        Ok(())
    }

    #[test]
    fn transaction_rollback_through_pool() -> Result<()> {
        let path = tmp("txpool.db");
        let pool = BufferPool::new(Pager::create(&path)?, 8);
        let id = pool.allocate()?;
        pool.with_page_mut(id, |p| p.put_u64(0, 1))?;
        pool.flush()?;

        pool.begin()?;
        pool.with_page_mut(id, |p| p.put_u64(0, 2))?;
        // Force the dirty page to disk (inside the tx) via many allocations.
        for _ in 0..40 {
            pool.allocate()?;
        }
        pool.rollback()?;
        assert_eq!(pool.with_page(id, |p| p.get_u64(0))?, 1);
        assert_eq!(pool.page_count(), 2);
        Ok(())
    }

    #[test]
    fn commit_then_reopen() -> Result<()> {
        let path = tmp("commitpool.db");
        {
            let pool = BufferPool::new(Pager::create(&path)?, 8);
            pool.begin()?;
            let id = pool.allocate()?;
            pool.with_page_mut(id, |p| p.put_u64(8, 0xfeed))?;
            pool.set_meta(3, 33)?;
            pool.commit()?;
        }
        let pool = BufferPool::new(Pager::open(&path)?, 8);
        assert_eq!(pool.meta(3), 33);
        assert_eq!(pool.with_page(PageId(1), |p| p.get_u64(8))?, 0xfeed);
        Ok(())
    }

    #[test]
    fn free_and_reuse_through_pool() -> Result<()> {
        let pool = BufferPool::new(Pager::create(&tmp("freepool.db"))?, 8);
        let a = pool.allocate()?;
        pool.with_page_mut(a, |p| p.put_u64(0, 7))?;
        pool.free(a)?;
        let b = pool.allocate()?;
        assert_eq!(a, b);
        // Fresh allocation must be zeroed, not show stale cache content.
        assert_eq!(pool.with_page(b, |p| p.get_u64(0))?, 0);
        Ok(())
    }
}
