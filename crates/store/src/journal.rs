//! Rollback journal: atomic multi-page commits and crash recovery.
//!
//! Before a transaction first modifies a page, the page's *original* image
//! is appended to a side file (`<store>-journal`). If the process crashes
//! mid-transaction, the next open finds the hot journal and copies the
//! original images back, truncating the file to its original length — the
//! store is restored to the pre-transaction state. Committing syncs the data
//! file and deletes the journal.
//!
//! Format (all little-endian):
//!
//! ```text
//! header:  magic "PQGJRNL1" | original_page_count u32 | header_crc u32
//! entry*:  page_id u32 | image_crc u32 | image [PAGE_SIZE]
//! ```
//!
//! Entries carry CRCs so a torn tail write is detected and ignored: a torn
//! entry's data page was never modified (the journal is synced before the
//! first data write of each entry's page), so skipping it is safe.

use crate::crc::crc32;
use crate::page::{PageBuf, PageId, PAGE_SIZE};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"PQGJRNL1";
const HEADER_LEN: usize = 16;
const ENTRY_LEN: usize = 8 + PAGE_SIZE;

/// An open, *hot* journal for one transaction.
pub struct Journal {
    file: File,
    path: PathBuf,
    /// Pages already journaled in this transaction.
    journaled: std::collections::BTreeSet<u32>,
    synced: bool,
}

impl Journal {
    /// Path of the journal side file for a store file.
    pub fn path_for(store: &Path) -> PathBuf {
        let mut os = store.as_os_str().to_owned();
        os.push("-journal");
        PathBuf::from(os)
    }

    /// Starts a journal recording `original_page_count`.
    pub fn begin(store: &Path, original_page_count: u32) -> io::Result<Journal> {
        let path = Self::path_for(store);
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        let mut header = [0u8; HEADER_LEN];
        header[..8].copy_from_slice(MAGIC);
        header[8..12].copy_from_slice(&original_page_count.to_le_bytes());
        let crc = crc32(&header[..12]);
        header[12..16].copy_from_slice(&crc.to_le_bytes());
        file.write_all(&header)?;
        Ok(Journal {
            file,
            path,
            journaled: Default::default(),
            synced: false,
        })
    }

    /// True if `page` has already been captured in this transaction.
    pub fn contains(&self, page: PageId) -> bool {
        self.journaled.contains(&page.0)
    }

    /// Appends the original image of `page`. Idempotent per transaction.
    pub fn record(&mut self, page: PageId, image: &PageBuf) -> io::Result<()> {
        if !self.journaled.insert(page.0) {
            return Ok(());
        }
        let mut head = [0u8; 8];
        head[..4].copy_from_slice(&page.0.to_le_bytes());
        head[4..].copy_from_slice(&crc32(image.as_bytes()).to_le_bytes());
        self.file.write_all(&head)?;
        self.file.write_all(image.as_bytes())?;
        self.synced = false;
        Ok(())
    }

    /// Syncs the journal; must happen before the first data-file write that
    /// overwrites any recorded page.
    pub fn sync(&mut self) -> io::Result<()> {
        if !self.synced {
            self.file.sync_data()?;
            self.synced = true;
        }
        Ok(())
    }

    /// Commits the transaction by deleting the journal (the caller must
    /// have synced the data file first).
    pub fn commit(self) -> io::Result<()> {
        drop(self.file);
        std::fs::remove_file(&self.path)
    }

    /// Rolls the data file back to the recorded images and removes the
    /// journal.
    pub fn rollback(self, data: &mut File) -> io::Result<()> {
        drop(self.file);
        replay(&self.path, data)?;
        std::fs::remove_file(&self.path)
    }
}

/// Recovers `data` from a hot journal at `journal_path`, if one exists.
/// Returns `true` if a rollback was performed.
pub fn recover(store: &Path, data: &mut File) -> io::Result<bool> {
    let path = Journal::path_for(store);
    if !path.exists() {
        return Ok(false);
    }
    match replay(&path, data) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            // Header invalid: journal never became hot; discard it.
        }
        Err(e) => return Err(e),
    }
    std::fs::remove_file(&path)?;
    Ok(true)
}

/// Copies all valid journal entries back into `data` and truncates it to
/// the original page count. Invalid tails are ignored; an invalid header is
/// an `InvalidData` error (the journal never became hot).
fn replay(journal_path: &Path, data: &mut File) -> io::Result<()> {
    let mut journal = File::open(journal_path)?;
    let mut header = [0u8; HEADER_LEN];
    if journal.read_exact(&mut header).is_err()
        || &header[..8] != MAGIC
        || crc32(&header[..12]) != u32::from_le_bytes(header[12..16].try_into().expect("len"))
    {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "invalid journal header",
        ));
    }
    let original_pages = u32::from_le_bytes(header[8..12].try_into().expect("len"));

    let mut entry = vec![0u8; ENTRY_LEN];
    loop {
        match read_exact_or_eof(&mut journal, &mut entry)? {
            false => break,
            true => {
                let page = u32::from_le_bytes(entry[..4].try_into().expect("len"));
                let stored_crc = u32::from_le_bytes(entry[4..8].try_into().expect("len"));
                if crc32(&entry[8..]) != stored_crc {
                    break; // torn tail: its data page was never modified
                }
                data.seek(SeekFrom::Start(PageId(page).offset()))?;
                data.write_all(&entry[8..])?;
            }
        }
    }
    data.set_len(original_pages as u64 * PAGE_SIZE as u64)?;
    data.sync_data()?;
    Ok(())
}

/// Reads exactly `buf.len()` bytes, or returns `Ok(false)` on clean or torn
/// EOF (partial reads count as torn tail).
fn read_exact_or_eof(f: &mut File, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match f.read(&mut buf[filled..])? {
            0 => return Ok(false),
            n => filled += n,
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pqgram-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn page_with(byte: u8) -> PageBuf {
        let mut p = PageBuf::zeroed();
        p.as_bytes_mut().fill(byte);
        p
    }

    fn write_page(f: &mut File, id: PageId, p: &PageBuf) {
        f.seek(SeekFrom::Start(id.offset())).unwrap();
        f.write_all(p.as_bytes()).unwrap();
    }

    fn read_page(f: &mut File, id: PageId) -> PageBuf {
        let mut buf = vec![0u8; PAGE_SIZE];
        f.seek(SeekFrom::Start(id.offset())).unwrap();
        f.read_exact(&mut buf).unwrap();
        PageBuf::from_bytes(&buf)
    }

    fn fresh_store(name: &str, pages: u32) -> (PathBuf, File) {
        let store = tmp(name);
        std::fs::remove_file(&store).ok();
        std::fs::remove_file(Journal::path_for(&store)).ok();
        let mut f = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(true)
            .open(&store)
            .unwrap();
        for i in 0..pages {
            write_page(&mut f, PageId(i), &page_with(i as u8));
        }
        (store, f)
    }

    #[test]
    fn rollback_restores_images_and_length() {
        let (store, mut f) = fresh_store("rollback.db", 3);
        let mut j = Journal::begin(&store, 3).unwrap();
        j.record(PageId(1), &read_page(&mut f, PageId(1))).unwrap();
        j.sync().unwrap();
        write_page(&mut f, PageId(1), &page_with(0xff));
        write_page(&mut f, PageId(3), &page_with(0xee)); // newly appended page
        j.rollback(&mut f).unwrap();
        assert_eq!(read_page(&mut f, PageId(1)), page_with(1));
        assert_eq!(f.metadata().unwrap().len(), 3 * PAGE_SIZE as u64);
        assert!(!Journal::path_for(&store).exists());
    }

    #[test]
    fn commit_removes_journal() {
        let (store, mut f) = fresh_store("commit.db", 2);
        let mut j = Journal::begin(&store, 2).unwrap();
        j.record(PageId(0), &read_page(&mut f, PageId(0))).unwrap();
        j.sync().unwrap();
        write_page(&mut f, PageId(0), &page_with(0xaa));
        f.sync_data().unwrap();
        j.commit().unwrap();
        assert!(!Journal::path_for(&store).exists());
        assert_eq!(read_page(&mut f, PageId(0)), page_with(0xaa));
    }

    #[test]
    fn recover_applies_hot_journal() {
        let (store, mut f) = fresh_store("recover.db", 2);
        {
            let mut j = Journal::begin(&store, 2).unwrap();
            j.record(PageId(1), &read_page(&mut f, PageId(1))).unwrap();
            j.sync().unwrap();
            write_page(&mut f, PageId(1), &page_with(0x99));
            // Crash: journal dropped without commit/rollback.
            std::mem::forget(j);
        }
        assert!(recover(&store, &mut f).unwrap());
        assert_eq!(read_page(&mut f, PageId(1)), page_with(1));
        assert!(!recover(&store, &mut f).unwrap(), "journal must be gone");
    }

    #[test]
    fn recover_ignores_torn_tail() {
        let (store, mut f) = fresh_store("torn.db", 3);
        {
            let mut j = Journal::begin(&store, 3).unwrap();
            j.record(PageId(1), &read_page(&mut f, PageId(1))).unwrap();
            j.record(PageId(2), &read_page(&mut f, PageId(2))).unwrap();
            j.sync().unwrap();
            write_page(&mut f, PageId(1), &page_with(0x77));
            std::mem::forget(j);
        }
        // Tear the second entry.
        let jpath = Journal::path_for(&store);
        let len = std::fs::metadata(&jpath).unwrap().len();
        let f2 = OpenOptions::new().write(true).open(&jpath).unwrap();
        f2.set_len(len - 100).unwrap();
        drop(f2);
        assert!(recover(&store, &mut f).unwrap());
        // First entry applied; torn second entry (page 2 unmodified) skipped.
        assert_eq!(read_page(&mut f, PageId(1)), page_with(1));
        assert_eq!(read_page(&mut f, PageId(2)), page_with(2));
    }

    #[test]
    fn recover_discards_journal_with_bad_header() {
        let (store, mut f) = fresh_store("badheader.db", 2);
        std::fs::write(Journal::path_for(&store), b"garbage").unwrap();
        let before = read_page(&mut f, PageId(1));
        assert!(recover(&store, &mut f).unwrap());
        assert_eq!(read_page(&mut f, PageId(1)), before);
        assert!(!Journal::path_for(&store).exists());
    }

    #[test]
    fn record_is_idempotent_per_page() {
        let (store, mut f) = fresh_store("idem.db", 2);
        let mut j = Journal::begin(&store, 2).unwrap();
        let img = read_page(&mut f, PageId(1));
        j.record(PageId(1), &img).unwrap();
        let len_one = std::fs::metadata(Journal::path_for(&store)).unwrap().len();
        j.record(PageId(1), &page_with(0x55)).unwrap(); // ignored duplicate
        j.sync().unwrap();
        assert_eq!(
            std::fs::metadata(Journal::path_for(&store)).unwrap().len(),
            len_one
        );
        write_page(&mut f, PageId(1), &page_with(0x11));
        j.rollback(&mut f).unwrap();
        assert_eq!(read_page(&mut f, PageId(1)), img);
    }
}
