//! Rollback journal: atomic multi-page commits and crash recovery.
//!
//! Before a transaction first modifies a page, the page's *original* image
//! is appended to a side file (`<store>-journal`). If the process crashes
//! mid-transaction, the next open finds the hot journal and copies the
//! original images back, truncating the file to its original length — the
//! store is restored to the pre-transaction state. Committing syncs the data
//! file and deletes the journal.
//!
//! All file access goes through the [`crate::vfs`] seam, which is how the
//! crash-enumeration suite (`crates/store/tests/crash.rs`) proves the
//! sync-ordering invariants below at every I/O boundary instead of trusting
//! this comment.
//!
//! Format (all little-endian):
//!
//! ```text
//! header:  magic "PQGJRNL2" | original_page_count u32 | header_crc u32
//! entry*:  page_id u32 | seq u32 | entry_crc u32 | image [PAGE_SIZE]
//! ```
//!
//! `seq` is the zero-based position of the entry in the journal; replay
//! insists on the sequence being exactly 0, 1, 2, …, so a misordered or
//! duplicated block (e.g. from a storage layer reordering writes) can never
//! be applied. `entry_crc` covers page id, seq, and image, so a torn tail
//! write is detected and ignored: a torn entry's data page was never
//! modified (the journal is synced before the first data write of each
//! entry's page), so skipping it is safe. Journals are ephemeral — they
//! never outlive one process generation in a healthy store — so the format
//! bump from `PQGJRNL1` needs no migration: a leftover v1 journal fails the
//! header check and is discarded exactly like any never-hot journal.

use crate::bytes::{le32, sub};
use crate::crc::{crc32, update};
use crate::page::{PageBuf, PageId, PAGE_SIZE, PAGE_SIZE_U64};
use crate::vfs::{len_u64, Vfs, VfsFile};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const MAGIC: &[u8; 8] = b"PQGJRNL2";
const HEADER_LEN: usize = 16;
const HEADER_LEN_U64: u64 = 16;
const ENTRY_HEAD: usize = 12;
const ENTRY_LEN: usize = ENTRY_HEAD + PAGE_SIZE;

/// An open, *hot* journal for one transaction.
pub struct Journal {
    file: Box<dyn VfsFile>,
    vfs: Arc<dyn Vfs>,
    path: PathBuf,
    /// Pages already journaled in this transaction.
    journaled: std::collections::BTreeSet<u32>,
    /// Sequence number of the next entry.
    next_seq: u32,
    /// Append offset of the next entry.
    end: u64,
    synced: bool,
}

impl Journal {
    /// Path of the journal side file for a store file.
    pub fn path_for(store: &Path) -> PathBuf {
        let mut os = store.as_os_str().to_owned();
        os.push("-journal");
        PathBuf::from(os)
    }

    /// Starts a journal recording `original_page_count`.
    pub fn begin(vfs: Arc<dyn Vfs>, store: &Path, original_page_count: u32) -> io::Result<Journal> {
        let path = Self::path_for(store);
        let mut file = vfs.create_truncate(&path)?;
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&original_page_count.to_le_bytes());
        let crc = crc32(&header);
        header.extend_from_slice(&crc.to_le_bytes());
        file.write_all_at(0, &header)?;
        Ok(Journal {
            file,
            vfs,
            path,
            journaled: Default::default(),
            next_seq: 0,
            end: HEADER_LEN_U64,
            synced: false,
        })
    }

    /// True if `page` has already been captured in this transaction.
    pub fn contains(&self, page: PageId) -> bool {
        self.journaled.contains(&page.0)
    }

    /// Appends the original image of `page` (one write: head and image
    /// together, so a crash tears at most one entry). Idempotent per
    /// transaction.
    pub fn record(&mut self, page: PageId, image: &PageBuf) -> io::Result<()> {
        if !self.journaled.insert(page.0) {
            return Ok(());
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut entry = Vec::with_capacity(ENTRY_LEN);
        entry.extend_from_slice(&page.0.to_le_bytes());
        entry.extend_from_slice(&seq.to_le_bytes());
        let crc = entry_crc(&entry, image.as_bytes());
        entry.extend_from_slice(&crc.to_le_bytes());
        entry.extend_from_slice(image.as_bytes());
        self.file.write_all_at(self.end, &entry)?;
        self.end += len_u64(entry.len());
        self.synced = false;
        Ok(())
    }

    /// Syncs the journal; must happen before the first data-file write that
    /// overwrites any recorded page.
    pub fn sync(&mut self) -> io::Result<()> {
        if !self.synced {
            self.file.sync()?;
            self.synced = true;
        }
        Ok(())
    }

    /// Commits the transaction by deleting the journal (the caller must
    /// have synced the data file first).
    pub fn commit(self) -> io::Result<()> {
        let Journal {
            file, vfs, path, ..
        } = self;
        drop(file);
        vfs.delete(&path)
    }

    /// Rolls the data file back to the recorded images and removes the
    /// journal.
    pub fn rollback(self, data: &mut dyn VfsFile) -> io::Result<()> {
        let Journal {
            file, vfs, path, ..
        } = self;
        drop(file);
        replay(vfs.as_ref(), &path, data)?;
        vfs.delete(&path)
    }
}

/// CRC over an entry's head fields (page id, seq) and page image.
fn entry_crc(head: &[u8], image: &[u8]) -> u32 {
    let state = update(0xffff_ffff, head);
    update(state, image) ^ 0xffff_ffff
}

/// Summary returned by [`validate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JournalCheck {
    /// Page count the store had when the journal was begun.
    pub original_pages: u32,
    /// Number of intact entries.
    pub entries: u32,
}

/// Structural invariant audit of a journal file: header magic and CRC,
/// per-entry CRCs, and the monotone sequence 0, 1, 2, … with no gaps or
/// duplicates. Unlike [`replay`], which silently stops at the first broken
/// entry (by design — that is crash recovery), `validate` reports the
/// precise violation.
// analyze: entrypoint(recovery)
pub fn validate(vfs: &dyn Vfs, journal_path: &Path) -> io::Result<JournalCheck> {
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let mut journal = vfs.open(journal_path)?;
    let mut header = [0u8; HEADER_LEN];
    if journal.read_exact_at(0, &mut header).is_err() || sub(&header, 0, 8) != MAGIC.as_slice() {
        return Err(bad("journal header magic mismatch".into()));
    }
    if Some(crc32(sub(&header, 0, 12))) != le32(&header, 12) {
        return Err(bad("journal header checksum mismatch".into()));
    }
    let original_pages = le32(&header, 8).ok_or_else(|| bad("journal header truncated".into()))?;
    let mut entry = vec![0u8; ENTRY_LEN];
    let mut entries = 0u32;
    let mut pos = HEADER_LEN_U64;
    while read_exact_or_eof(journal.as_mut(), pos, &mut entry)? {
        pos += len_u64(entry.len());
        let seq = le32(&entry, 4)
            .ok_or_else(|| bad(format!("journal entry {entries}: truncated head")))?;
        let head_crc = entry_crc(sub(&entry, 0, 8), sub(&entry, ENTRY_HEAD, PAGE_SIZE));
        if Some(head_crc) != le32(&entry, 8) {
            return Err(bad(format!("journal entry {entries}: checksum mismatch")));
        }
        if seq != entries {
            return Err(bad(format!(
                "journal entry {entries}: sequence number {seq}, expected {entries}"
            )));
        }
        entries += 1;
    }
    Ok(JournalCheck {
        original_pages,
        entries,
    })
}

/// Recovers `data` from a hot journal next to `store`, if one exists.
/// Returns `true` if a rollback was performed.
// analyze: entrypoint(recovery)
pub fn recover(vfs: &dyn Vfs, store: &Path, data: &mut dyn VfsFile) -> io::Result<bool> {
    let path = Journal::path_for(store);
    if !vfs.exists(&path) {
        return Ok(false);
    }
    match replay(vfs, &path, data) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            // Header invalid: journal never became hot; discard it.
        }
        Err(e) => return Err(e),
    }
    vfs.delete(&path)?;
    Ok(true)
}

/// Copies all valid journal entries back into `data` and truncates it to
/// the original page count. Invalid or out-of-sequence tails are ignored;
/// an invalid header is an `InvalidData` error (the journal never became
/// hot).
// analyze: entrypoint(recovery)
fn replay(vfs: &dyn Vfs, journal_path: &Path, data: &mut dyn VfsFile) -> io::Result<()> {
    let invalid = || io::Error::new(io::ErrorKind::InvalidData, "invalid journal header");
    let mut journal = vfs.open(journal_path)?;
    let mut header = [0u8; HEADER_LEN];
    if journal.read_exact_at(0, &mut header).is_err()
        || sub(&header, 0, 8) != MAGIC.as_slice()
        || Some(crc32(sub(&header, 0, 12))) != le32(&header, 12)
    {
        return Err(invalid());
    }
    let original_pages = le32(&header, 8).ok_or_else(invalid)?;

    let mut entry = vec![0u8; ENTRY_LEN];
    let mut expected_seq = 0u32;
    let mut pos = HEADER_LEN_U64;
    while read_exact_or_eof(journal.as_mut(), pos, &mut entry)? {
        pos += len_u64(entry.len());
        let (Some(page), Some(seq)) = (le32(&entry, 0), le32(&entry, 4)) else {
            break; // unreachable: ENTRY_LEN covers the head
        };
        let image = sub(&entry, ENTRY_HEAD, PAGE_SIZE);
        if Some(entry_crc(sub(&entry, 0, 8), image)) != le32(&entry, 8) {
            break; // torn tail: its data page was never modified
        }
        if seq != expected_seq {
            break; // reordered or duplicated block: refuse to apply
        }
        expected_seq += 1;
        data.write_all_at(PageId(page).offset(), image)?;
    }
    data.truncate(u64::from(original_pages) * PAGE_SIZE_U64)?;
    data.sync()?;
    Ok(())
}

/// Reads exactly `buf.len()` bytes at `offset`, or returns `Ok(false)` on
/// clean or torn EOF (partial reads count as torn tail).
fn read_exact_or_eof(f: &mut dyn VfsFile, offset: u64, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0usize;
    while filled < buf.len() {
        let Some(rest) = buf.get_mut(filled..) else {
            return Ok(true);
        };
        match f.read_at(offset + len_u64(filled), rest)? {
            0 => return Ok(false),
            n => filled += n,
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::RealVfs;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pqgram-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).ok();
        dir.join(name)
    }

    fn page_with(byte: u8) -> PageBuf {
        let mut p = PageBuf::zeroed();
        p.as_bytes_mut().fill(byte);
        p
    }

    fn write_page(f: &mut dyn VfsFile, id: PageId, p: &PageBuf) -> io::Result<()> {
        f.write_all_at(id.offset(), p.as_bytes())
    }

    fn read_page(f: &mut dyn VfsFile, id: PageId) -> io::Result<PageBuf> {
        let mut buf = vec![0u8; PAGE_SIZE];
        f.read_exact_at(id.offset(), &mut buf)?;
        Ok(PageBuf::from_bytes(&buf))
    }

    fn vfs() -> Arc<dyn Vfs> {
        Arc::new(RealVfs)
    }

    fn fresh_store(name: &str, pages: u32) -> io::Result<(PathBuf, Box<dyn VfsFile>)> {
        let store = tmp(name);
        std::fs::remove_file(&store).ok();
        std::fs::remove_file(Journal::path_for(&store)).ok();
        let mut f = RealVfs.create_truncate(&store)?;
        for i in 0..pages {
            write_page(f.as_mut(), PageId(i), &page_with(i as u8))?;
        }
        Ok((store, f))
    }

    #[test]
    fn rollback_restores_images_and_length() -> io::Result<()> {
        let (store, mut f) = fresh_store("rollback.db", 3)?;
        let mut j = Journal::begin(vfs(), &store, 3)?;
        j.record(PageId(1), &read_page(f.as_mut(), PageId(1))?)?;
        j.sync()?;
        write_page(f.as_mut(), PageId(1), &page_with(0xff))?;
        write_page(f.as_mut(), PageId(3), &page_with(0xee))?; // newly appended page
        j.rollback(f.as_mut())?;
        assert_eq!(read_page(f.as_mut(), PageId(1))?, page_with(1));
        assert_eq!(f.size()?, 3 * PAGE_SIZE_U64);
        assert!(!Journal::path_for(&store).exists());
        Ok(())
    }

    #[test]
    fn commit_removes_journal() -> io::Result<()> {
        let (store, mut f) = fresh_store("commit.db", 2)?;
        let mut j = Journal::begin(vfs(), &store, 2)?;
        j.record(PageId(0), &read_page(f.as_mut(), PageId(0))?)?;
        j.sync()?;
        write_page(f.as_mut(), PageId(0), &page_with(0xaa))?;
        f.sync()?;
        j.commit()?;
        assert!(!Journal::path_for(&store).exists());
        assert_eq!(read_page(f.as_mut(), PageId(0))?, page_with(0xaa));
        Ok(())
    }

    #[test]
    fn recover_applies_hot_journal() -> io::Result<()> {
        let (store, mut f) = fresh_store("recover.db", 2)?;
        {
            let mut j = Journal::begin(vfs(), &store, 2)?;
            j.record(PageId(1), &read_page(f.as_mut(), PageId(1))?)?;
            j.sync()?;
            write_page(f.as_mut(), PageId(1), &page_with(0x99))?;
            // Crash: journal dropped without commit/rollback.
            std::mem::forget(j);
        }
        assert!(recover(&RealVfs, &store, f.as_mut())?);
        assert_eq!(read_page(f.as_mut(), PageId(1))?, page_with(1));
        assert!(
            !recover(&RealVfs, &store, f.as_mut())?,
            "journal must be gone"
        );
        Ok(())
    }

    #[test]
    fn recover_ignores_torn_tail() -> io::Result<()> {
        let (store, mut f) = fresh_store("torn.db", 3)?;
        {
            let mut j = Journal::begin(vfs(), &store, 3)?;
            j.record(PageId(1), &read_page(f.as_mut(), PageId(1))?)?;
            j.record(PageId(2), &read_page(f.as_mut(), PageId(2))?)?;
            j.sync()?;
            write_page(f.as_mut(), PageId(1), &page_with(0x77))?;
            std::mem::forget(j);
        }
        // Tear the second entry.
        let jpath = Journal::path_for(&store);
        let len = std::fs::metadata(&jpath)?.len();
        let mut f2 = RealVfs.open(&jpath)?;
        f2.truncate(len - 100)?;
        drop(f2);
        assert!(recover(&RealVfs, &store, f.as_mut())?);
        // First entry applied; torn second entry (page 2 unmodified) skipped.
        assert_eq!(read_page(f.as_mut(), PageId(1))?, page_with(1));
        assert_eq!(read_page(f.as_mut(), PageId(2))?, page_with(2));
        Ok(())
    }

    #[test]
    fn recover_discards_journal_with_bad_header() -> io::Result<()> {
        let (store, mut f) = fresh_store("badheader.db", 2)?;
        std::fs::write(Journal::path_for(&store), b"garbage")?;
        let before = read_page(f.as_mut(), PageId(1))?;
        assert!(recover(&RealVfs, &store, f.as_mut())?);
        assert_eq!(read_page(f.as_mut(), PageId(1))?, before);
        assert!(!Journal::path_for(&store).exists());
        Ok(())
    }

    #[test]
    fn record_is_idempotent_per_page() -> io::Result<()> {
        let (store, mut f) = fresh_store("idem.db", 2)?;
        let mut j = Journal::begin(vfs(), &store, 2)?;
        let img = read_page(f.as_mut(), PageId(1))?;
        j.record(PageId(1), &img)?;
        let len_one = std::fs::metadata(Journal::path_for(&store))?.len();
        j.record(PageId(1), &page_with(0x55))?; // ignored duplicate
        j.sync()?;
        assert_eq!(std::fs::metadata(Journal::path_for(&store))?.len(), len_one);
        write_page(f.as_mut(), PageId(1), &page_with(0x11))?;
        j.rollback(f.as_mut())?;
        assert_eq!(read_page(f.as_mut(), PageId(1))?, img);
        Ok(())
    }

    #[test]
    fn validate_accepts_well_formed_journal() -> io::Result<()> {
        let (store, mut f) = fresh_store("validate-ok.db", 3)?;
        let mut j = Journal::begin(vfs(), &store, 3)?;
        j.record(PageId(1), &read_page(f.as_mut(), PageId(1))?)?;
        j.record(PageId(2), &read_page(f.as_mut(), PageId(2))?)?;
        j.sync()?;
        let check = validate(&RealVfs, &Journal::path_for(&store))?;
        assert_eq!(
            check,
            JournalCheck {
                original_pages: 3,
                entries: 2
            }
        );
        j.rollback(f.as_mut())?;
        Ok(())
    }

    #[test]
    fn replay_refuses_out_of_sequence_entries() -> io::Result<()> {
        let (store, mut f) = fresh_store("seq.db", 3)?;
        {
            let mut j = Journal::begin(vfs(), &store, 3)?;
            j.record(PageId(1), &read_page(f.as_mut(), PageId(1))?)?;
            j.record(PageId(2), &read_page(f.as_mut(), PageId(2))?)?;
            j.sync()?;
            write_page(f.as_mut(), PageId(1), &page_with(0x70))?;
            std::mem::forget(j);
        }
        // Swap the two entries wholesale, simulating storage-level
        // reordering. CRCs stay valid, sequence numbers do not.
        let jpath = Journal::path_for(&store);
        let mut raw = std::fs::read(&jpath)?;
        let (head, body) = raw.split_at_mut(HEADER_LEN);
        let _ = head;
        let (a, b) = body.split_at_mut(ENTRY_LEN);
        a.swap_with_slice(&mut b[..ENTRY_LEN]);
        std::fs::write(&jpath, &raw)?;

        let Err(err) = validate(&RealVfs, &jpath) else {
            panic!("swapped entries must not validate");
        };
        assert!(
            err.to_string().contains("sequence number 1, expected 0"),
            "{err}"
        );
        // Recovery applies nothing (first entry already out of sequence)
        // rather than applying pages in the wrong order.
        assert!(recover(&RealVfs, &store, f.as_mut())?);
        assert_eq!(read_page(f.as_mut(), PageId(2))?, page_with(2));
        Ok(())
    }
}
