//! A disk-resident B+-tree with fixed-width keys.
//!
//! Keys are `(u64, u64)` pairs — in the index store `(tree_id, gram
//! fingerprint)`, matching the paper's relation `(treeId, pqg, cnt)` — and
//! values are `u32` counts. Leaves are chained for range scans (all grams of
//! one tree = one contiguous key range).
//!
//! Node layout (4 KiB pages):
//!
//! ```text
//! leaf:     [0]=1 | count u16 @1 | next leaf PageId @4 | pad | entries @16
//!           entry: key.hi u64 | key.lo u64 | value u32     (20 bytes, 204/leaf)
//! internal: [0]=2 | count u16 @1 | child0 PageId @4 | pad | entries @16
//!           entry: sep key (16) | child PageId (4)         (20 bytes, 204 keys)
//! ```
//!
//! Separator convention: `sep[i]` is a lower bound for everything in child
//! `i + 1`; descent picks `child = partition_point(sep <= key)`.
//! Deletions remove leaf entries without rebalancing (the index workload
//! deletes only what it re-inserts later; space is reclaimed when a tree is
//! dropped wholesale).

use crate::buffer::BufferPool;
use crate::page::{PageBuf, PageId};
use crate::pager::{Result, StoreError};

/// B+-tree key: `(tree_id, gram)` in the index store.
pub type Key = (u64, u64);

const TYPE_LEAF: u8 = 1;
const TYPE_INTERNAL: u8 = 2;
const OFF_COUNT: usize = 1;
const OFF_NEXT: usize = 4; // leaf: next-leaf; internal: child0
const OFF_ENTRIES: usize = 16;
const ENTRY: usize = 20;
/// Maximum entries per node (same arithmetic for both node kinds).
pub const NODE_CAPACITY: usize = (crate::page::PAGE_SIZE - OFF_ENTRIES) / ENTRY;

/// A B+-tree rooted at a page recorded in a pager metadata slot.
pub struct BTree<'p> {
    pool: &'p BufferPool,
    meta_slot: usize,
}

impl<'p> BTree<'p> {
    /// Opens the tree whose root page id lives in `meta_slot`; creates an
    /// empty root leaf if the slot is unset (zero).
    // analyze: txn-exempt(lazy root creation only fires when the relation has never existed — during create and inside the v1-to-v2 migration transaction; every later open sees a nonzero root slot and writes nothing)
    pub fn open(pool: &'p BufferPool, meta_slot: usize) -> Result<Self> {
        let tree = BTree { pool, meta_slot };
        if pool.meta(meta_slot) == 0 {
            let root = pool.allocate()?;
            pool.with_page_mut(root, init_leaf)?;
            pool.set_meta(meta_slot, u64::from(root.0) + 1)?;
        }
        Ok(tree)
    }

    /// Opens a tree that must already exist — the read path's entry point.
    /// Unlike [`BTree::open`] this never allocates: every relation is
    /// rooted at create time, so an unset slot on a read path is
    /// corruption, not a first touch. This keeps read-only handles
    /// provably free of page writes.
    pub fn open_existing(pool: &'p BufferPool, meta_slot: usize) -> Result<Self> {
        if pool.meta(meta_slot) == 0 {
            return Err(StoreError::Corrupt(format!(
                "relation rooted at meta slot {meta_slot} does not exist"
            )));
        }
        Ok(BTree { pool, meta_slot })
    }

    /// The slot is checked non-zero at open time, and an out-of-range
    /// value degrades to an unmapped page id that the very next page read
    /// rejects as `Corrupt` — it can never wrap into a live page.
    // analyze: taint-exempt(out-of-range roots saturate to an invalid page id; the pager rejects it)
    fn root(&self) -> PageId {
        let raw = self.pool.meta(self.meta_slot).saturating_sub(1);
        PageId(u32::try_from(raw).unwrap_or(u32::MAX))
    }

    fn set_root(&self, id: PageId) -> Result<()> {
        self.pool.set_meta(self.meta_slot, u64::from(id.0) + 1)
    }

    /// Point lookup.
    pub fn get(&self, key: Key) -> Result<Option<u32>> {
        let leaf = self.descend(key)?.0;
        self.pool.with_page(leaf, |p| {
            let (pos, found) = leaf_search(p, key);
            found.then(|| leaf_value(p, pos))
        })
    }

    /// Inserts or overwrites; returns the previous value if any.
    pub fn insert(&self, key: Key, value: u32) -> Result<Option<u32>> {
        let (leaf, path) = self.descend(key)?;
        enum Outcome {
            Done(Option<u32>),
            Split,
        }
        let outcome = self.pool.with_page_mut(leaf, |p| {
            let (pos, found) = leaf_search(p, key);
            if found {
                let old = leaf_value(p, pos);
                set_leaf_value(p, pos, value);
                return Outcome::Done(Some(old));
            }
            if count(p) < NODE_CAPACITY {
                leaf_insert_at(p, pos, key, value);
                return Outcome::Done(None);
            }
            Outcome::Split
        })?;
        match outcome {
            Outcome::Done(old) => Ok(old),
            Outcome::Split => {
                self.split_leaf_and_insert(leaf, key, value, path)?;
                Ok(None)
            }
        }
    }

    /// Removes a key; returns its value if present.
    pub fn delete(&self, key: Key) -> Result<Option<u32>> {
        let leaf = self.descend(key)?.0;
        self.pool.with_page_mut(leaf, |p| {
            let (pos, found) = leaf_search(p, key);
            found.then(|| {
                let old = leaf_value(p, pos);
                leaf_remove_at(p, pos);
                old
            })
        })
    }

    /// Calls `f(key, value)` for every entry with `lo <= key <= hi`, in key
    /// order, until `f` returns `false`.
    pub fn for_each_range(
        &self,
        lo: Key,
        hi: Key,
        mut f: impl FnMut(Key, u32) -> bool,
    ) -> Result<()> {
        let mut leaf = self.descend(lo)?.0;
        loop {
            // Copy the relevant slice out, then release the pool lock.
            // `past_hi` records that the leaf holds a key beyond the range —
            // without it a narrow range probe would walk the rest of the
            // leaf chain finding nothing.
            let (entries, past_hi, next) = self.pool.with_page(leaf, |p| {
                let n = count(p);
                let (start, _) = leaf_search(p, lo);
                let mut out = Vec::with_capacity(n.saturating_sub(start));
                let mut past_hi = false;
                for i in start..n {
                    let k = leaf_key(p, i);
                    if k > hi {
                        past_hi = true;
                        break;
                    }
                    out.push((k, leaf_value(p, i)));
                }
                (out, past_hi, p.get_page_id(OFF_NEXT))
            })?;
            let exhausted = past_hi || entries.last().map(|&(k, _)| k >= hi).unwrap_or(false);
            for (k, v) in entries {
                if !f(k, v) {
                    return Ok(());
                }
            }
            if exhausted || next == PageId::NONE {
                return Ok(());
            }
            leaf = next;
        }
    }

    /// Total number of entries (full scan; used by tests and stats).
    pub fn len(&self) -> Result<u64> {
        let mut n = 0u64;
        self.for_each_range((0, 0), (u64::MAX, u64::MAX), |_, _| {
            n += 1;
            true
        })?;
        Ok(n)
    }

    /// True if the tree holds no entries.
    pub fn is_empty(&self) -> Result<bool> {
        let mut any = false;
        self.for_each_range((0, 0), (u64::MAX, u64::MAX), |_, _| {
            any = true;
            false
        })?;
        Ok(!any)
    }

    /// Walks from the root to the leaf responsible for `key`, returning the
    /// leaf and the descent path `(internal page, child index)`.
    fn descend(&self, key: Key) -> Result<(PageId, Vec<(PageId, usize)>)> {
        let (leaf, path, _) = self.descend_bounded(key)?;
        Ok((leaf, path))
    }

    /// [`BTree::descend`] that additionally reports the exclusive upper
    /// bound of the leaf's key range (the tightest right separator seen on
    /// the way down; `None` = rightmost leaf). Every key `k` with
    /// `key <= k < bound` descends to the same leaf along the same path,
    /// which is what lets [`BTree::apply_batch_sorted`] reuse one seek
    /// across a run of adjacent keys.
    fn descend_bounded(&self, key: Key) -> Result<(PageId, Vec<(PageId, usize)>, Option<Key>)> {
        let mut cur = self.root();
        let mut path = Vec::new();
        let mut bound: Option<Key> = None;
        loop {
            if path.len() > 64 {
                return Err(corrupt("descent deeper than 64 levels (cycle?)"));
            }
            let step = self.pool.with_page(cur, |p| match p.get_u8(0) {
                TYPE_LEAF => Ok(None),
                TYPE_INTERNAL => {
                    let idx = internal_child_index(p, key);
                    let upper = (idx < count(p)).then(|| internal_key(p, idx));
                    Ok(Some((idx, internal_child(p, idx), upper)))
                }
                t => Err(crate::pager::StoreError::Corrupt(format!(
                    "descend hit unknown node type {t} at {cur:?}"
                ))),
            })??;
            match step {
                None => return Ok((cur, path, bound)),
                Some((idx, child, upper)) => {
                    if let Some(u) = upper {
                        bound = Some(bound.map_or(u, |b: Key| b.min(u)));
                    }
                    path.push((cur, idx));
                    cur = child;
                }
            }
        }
    }

    /// Applies a **strictly ascending** batch of mutations in one
    /// left-to-right pass: `(key, Some(value))` inserts or overwrites,
    /// `(key, None)` deletes (an absent key is ignored, like
    /// [`BTree::delete`]). The leaf located for one key is reused for every
    /// following key that falls below its separator bound, so a batch over
    /// a contiguous key run costs one descent plus sequential in-leaf edits
    /// instead of a fresh root-to-leaf descent per key.
    ///
    /// Errors if the keys are not strictly ascending (the batch may then be
    /// partially applied; callers run inside a transaction and roll back).
    pub fn apply_batch_sorted<I>(&self, ops: I) -> Result<()>
    where
        I: IntoIterator<Item = (Key, Option<u32>)>,
    {
        enum Outcome {
            Done,
            Split(u32),
        }
        let mut cached: Option<(PageId, Vec<(PageId, usize)>, Option<Key>)> = None;
        let mut last: Option<Key> = None;
        for (key, value) in ops {
            if let Some(prev) = last {
                if prev >= key {
                    return Err(corrupt("apply_batch_sorted input not strictly ascending"));
                }
            }
            last = Some(key);
            let (leaf, path, bound) = match cached.take() {
                Some(c) if c.2.is_none_or(|b| key < b) => c,
                _ => self.descend_bounded(key)?,
            };
            let outcome = self.pool.with_page_mut(leaf, |p| {
                let (pos, found) = leaf_search(p, key);
                match value {
                    Some(v) if found => {
                        set_leaf_value(p, pos, v);
                        Outcome::Done
                    }
                    Some(v) if count(p) < NODE_CAPACITY => {
                        leaf_insert_at(p, pos, key, v);
                        Outcome::Done
                    }
                    Some(v) => Outcome::Split(v),
                    None => {
                        if found {
                            leaf_remove_at(p, pos);
                        }
                        Outcome::Done
                    }
                }
            })?;
            match outcome {
                Outcome::Done => cached = Some((leaf, path, bound)),
                Outcome::Split(v) => {
                    // The split rewires parents; the cached path is stale
                    // for every later key, so the next key re-descends.
                    self.split_leaf_and_insert(leaf, key, v, path)?;
                }
            }
        }
        Ok(())
    }

    fn split_leaf_and_insert(
        &self,
        leaf: PageId,
        key: Key,
        value: u32,
        path: Vec<(PageId, usize)>,
    ) -> Result<()> {
        let right = self.pool.allocate()?;
        // Move the upper half out of the left leaf.
        let (moved, old_next) = self.pool.with_page_mut(leaf, |p| {
            let n = count(p);
            let mid = n / 2;
            let mut moved = Vec::with_capacity(n - mid);
            for i in mid..n {
                moved.push((leaf_key(p, i), leaf_value(p, i)));
            }
            let old_next = p.get_page_id(OFF_NEXT);
            set_count(p, mid);
            p.put_page_id(OFF_NEXT, right);
            (moved, old_next)
        })?;
        let Some(&(sep, _)) = moved.first() else {
            return Err(StoreError::Corrupt(
                "leaf split produced an empty upper half".into(),
            ));
        };
        self.pool.with_page_mut(right, |p| {
            init_leaf(p);
            p.put_page_id(OFF_NEXT, old_next);
            for (i, &(k, v)) in moved.iter().enumerate() {
                leaf_write_at(p, i, k, v);
            }
            set_count(p, moved.len());
        })?;
        // Insert the pending entry into whichever side owns it.
        let target = if key < sep { leaf } else { right };
        self.pool.with_page_mut(target, |p| {
            let (pos, found) = leaf_search(p, key);
            debug_assert!(!found, "split re-insert of key {key:?} already present");
            leaf_insert_at(p, pos, key, value);
        })?;
        self.propagate_split(sep, right, path)
    }

    /// Inserts `(sep, right)` into the parents, splitting as needed.
    fn propagate_split(
        &self,
        mut sep: Key,
        mut right: PageId,
        mut path: Vec<(PageId, usize)>,
    ) -> Result<()> {
        while let Some((node, idx)) = path.pop() {
            enum Outcome {
                Done,
                Split {
                    promoted: Key,
                    moved: Vec<(Key, PageId)>,
                    right_child0: PageId,
                },
            }
            let outcome = self.pool.with_page_mut(node, |p| {
                if count(p) < NODE_CAPACITY {
                    internal_insert_at(p, idx, sep, right);
                    return Outcome::Done;
                }
                // Split: promote the middle key.
                let n = count(p);
                let mid = n / 2;
                let promoted = internal_key(p, mid);
                let right_child0 = internal_child(p, mid + 1);
                let moved: Vec<(Key, PageId)> = (mid + 1..n)
                    .map(|i| (internal_key(p, i), internal_child(p, i + 1)))
                    .collect();
                set_count(p, mid);
                Outcome::Split {
                    promoted,
                    moved,
                    right_child0,
                }
            })?;
            match outcome {
                Outcome::Done => return Ok(()),
                Outcome::Split {
                    promoted,
                    moved,
                    right_child0,
                } => {
                    let new_node = self.pool.allocate()?;
                    self.pool.with_page_mut(new_node, |p| {
                        init_internal(p, right_child0);
                        for (i, &(k, c)) in moved.iter().enumerate() {
                            internal_write_at(p, i, k, c);
                        }
                        set_count(p, moved.len());
                    })?;
                    // The pending (sep, right) goes to whichever half owns
                    // its key range. Separators are pairwise distinct (a
                    // subtree's minimum key is never promoted again), so
                    // strict comparison suffices.
                    let target = if sep < promoted { node } else { new_node };
                    self.pool.with_page_mut(target, |p| {
                        let pos = internal_child_index(p, sep);
                        internal_insert_at(p, pos, sep, right);
                    })?;
                    sep = promoted;
                    right = new_node;
                }
            }
        }
        // Root split.
        let old_root = self.root();
        let new_root = self.pool.allocate()?;
        self.pool.with_page_mut(new_root, |p| {
            init_internal(p, old_root);
            internal_write_at(p, 0, sep, right);
            set_count(p, 1);
        })?;
        self.set_root(new_root)
    }
}

// ---- pure node views (safe inside pool closures) ---------------------------

fn init_leaf(p: &mut PageBuf) {
    p.as_bytes_mut().fill(0);
    p.put_u8(0, TYPE_LEAF);
    p.put_page_id(OFF_NEXT, PageId::NONE);
}

fn init_internal(p: &mut PageBuf, child0: PageId) {
    p.as_bytes_mut().fill(0);
    p.put_u8(0, TYPE_INTERNAL);
    p.put_page_id(OFF_NEXT, child0);
}

/// Entry count from the node header, widened to `usize` for indexing.
fn count(p: &PageBuf) -> usize {
    usize::from(p.get_u16(OFF_COUNT))
}

/// Stores the entry count. `n` is bounded by [`NODE_CAPACITY`] (far below
/// `u16::MAX`); the saturating conversion keeps an impossible overflow from
/// silently wrapping into a small count.
fn set_count(p: &mut PageBuf, n: usize) {
    debug_assert!(n <= NODE_CAPACITY, "set_count beyond capacity ({n})");
    p.put_u16(OFF_COUNT, u16::try_from(n).unwrap_or(u16::MAX));
}

fn entry_off(i: usize) -> usize {
    OFF_ENTRIES + i * ENTRY
}

fn leaf_key(p: &PageBuf, i: usize) -> Key {
    (p.get_u64(entry_off(i)), p.get_u64(entry_off(i) + 8))
}

fn leaf_value(p: &PageBuf, i: usize) -> u32 {
    p.get_u32(entry_off(i) + 16)
}

fn set_leaf_value(p: &mut PageBuf, i: usize, v: u32) {
    p.put_u32(entry_off(i) + 16, v);
}

fn leaf_write_at(p: &mut PageBuf, i: usize, k: Key, v: u32) {
    p.put_u64(entry_off(i), k.0);
    p.put_u64(entry_off(i) + 8, k.1);
    p.put_u32(entry_off(i) + 16, v);
}

/// Binary search; returns `(position, exact match)`.
fn leaf_search(p: &PageBuf, key: Key) -> (usize, bool) {
    let n = count(p);
    let (mut lo, mut hi) = (0usize, n);
    while lo < hi {
        let mid = (lo + hi) / 2;
        match leaf_key(p, mid).cmp(&key) {
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
            std::cmp::Ordering::Equal => return (mid, true),
        }
    }
    (lo, false)
}

fn leaf_insert_at(p: &mut PageBuf, pos: usize, key: Key, value: u32) {
    let n = count(p);
    debug_assert!(
        n < NODE_CAPACITY,
        "leaf_insert_at on a full node ({n} entries)"
    );
    p.shift(entry_off(pos), entry_off(pos + 1), (n - pos) * ENTRY);
    leaf_write_at(p, pos, key, value);
    set_count(p, n + 1);
}

fn leaf_remove_at(p: &mut PageBuf, pos: usize) {
    let n = count(p);
    p.shift(entry_off(pos + 1), entry_off(pos), (n - pos - 1) * ENTRY);
    set_count(p, n - 1);
}

fn internal_key(p: &PageBuf, i: usize) -> Key {
    (p.get_u64(entry_off(i)), p.get_u64(entry_off(i) + 8))
}

/// Child `i` (`0 ..= count`): child 0 lives in the header slot.
fn internal_child(p: &PageBuf, i: usize) -> PageId {
    if i == 0 {
        p.get_page_id(OFF_NEXT)
    } else {
        p.get_page_id(entry_off(i - 1) + 16)
    }
}

fn internal_write_at(p: &mut PageBuf, i: usize, k: Key, child: PageId) {
    p.put_u64(entry_off(i), k.0);
    p.put_u64(entry_off(i) + 8, k.1);
    p.put_page_id(entry_off(i) + 16, child);
}

/// Index of the child to descend into for `key`:
/// `partition_point(sep <= key)`.
fn internal_child_index(p: &PageBuf, key: Key) -> usize {
    let n = count(p);
    let (mut lo, mut hi) = (0usize, n);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if internal_key(p, mid) <= key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

fn internal_insert_at(p: &mut PageBuf, idx: usize, sep: Key, right: PageId) {
    let n = count(p);
    debug_assert!(
        n < NODE_CAPACITY,
        "internal_insert_at on a full node ({n} entries)"
    );
    p.shift(entry_off(idx), entry_off(idx + 1), (n - idx) * ENTRY);
    internal_write_at(p, idx, sep, right);
    set_count(p, n + 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::Pager;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pqgram-btree-{}", std::process::id()));
        // Idempotent; a failure here surfaces at Pager::create below.
        std::fs::create_dir_all(&dir).ok();
        let p = dir.join(name);
        std::fs::remove_file(&p).ok();
        let mut j = p.as_os_str().to_owned();
        j.push("-journal");
        std::fs::remove_file(PathBuf::from(j)).ok();
        p
    }

    fn pool(name: &str) -> Result<BufferPool> {
        Ok(BufferPool::new(Pager::create(&tmp(name))?, 64))
    }

    #[test]
    fn insert_get_overwrite() -> Result<()> {
        let pool = pool("basic.db")?;
        let tree = BTree::open(&pool, 0)?;
        assert_eq!(tree.get((1, 2))?, None);
        assert_eq!(tree.insert((1, 2), 10)?, None);
        assert_eq!(tree.get((1, 2))?, Some(10));
        assert_eq!(tree.insert((1, 2), 11)?, Some(10));
        assert_eq!(tree.get((1, 2))?, Some(11));
        assert_eq!(tree.len()?, 1);
        Ok(())
    }

    #[test]
    fn many_keys_random_order() -> Result<()> {
        let pool = pool("many.db")?;
        let tree = BTree::open(&pool, 0)?;
        let mut keys: Vec<Key> = (0..20_000u64).map(|i| (i % 7, i * 31 % 65_536)).collect();
        keys.sort_unstable();
        keys.dedup();
        let mut shuffled = keys.clone();
        shuffled.shuffle(&mut StdRng::seed_from_u64(5));
        for (i, &k) in shuffled.iter().enumerate() {
            tree.insert(k, i as u32)?;
        }
        assert_eq!(tree.len()?, keys.len() as u64);
        for &k in keys.iter().step_by(97) {
            assert!(tree.get(k)?.is_some(), "missing {k:?}");
        }
        // Full scan returns keys in sorted order.
        let mut scanned = Vec::new();
        tree.for_each_range((0, 0), (u64::MAX, u64::MAX), |k, _| {
            scanned.push(k);
            true
        })?;
        assert_eq!(scanned, keys);
        Ok(())
    }

    #[test]
    fn range_scan_per_tree_id() -> Result<()> {
        let pool = pool("range.db")?;
        let tree = BTree::open(&pool, 0)?;
        for t in 0..5u64 {
            for g in 0..300u64 {
                tree.insert((t, g * 7), (t * 1000 + g) as u32)?;
            }
        }
        let mut seen = Vec::new();
        tree.for_each_range((2, 0), (2, u64::MAX), |k, v| {
            assert_eq!(k.0, 2);
            seen.push((k.1, v));
            true
        })?;
        assert_eq!(seen.len(), 300);
        assert!(seen.windows(2).all(|w| w[0].0 < w[1].0));
        Ok(())
    }

    #[test]
    fn narrow_range_probes_stop_at_the_bound() -> Result<()> {
        // Multi-leaf tree of even grams; probes whose upper bound falls
        // mid-leaf (odd / absent keys) must deliver exactly the in-range
        // slice — a regression guard for the `past_hi` cut-off, without
        // which each probe walked the remaining leaf chain.
        let pool = pool("narrow.db")?;
        let tree = BTree::open(&pool, 0)?;
        for g in 0..2_000u64 {
            tree.insert((1, g * 2), g as u32)?;
        }
        let cases: [(u64, u64, Vec<u64>); 5] = [
            (100, 100, vec![100]),                                   // single present key
            (101, 101, vec![]),                                      // single absent key
            (99, 105, vec![100, 102, 104]),                          // window over absences
            (0, 3, vec![0, 2]),                                      // prefix window
            (3_990, 5_000, vec![3_990, 3_992, 3_994, 3_996, 3_998]), // tail
        ];
        for (lo, hi, expect) in cases {
            let mut seen = Vec::new();
            tree.for_each_range((1, lo), (1, hi), |k, _| {
                seen.push(k.1);
                true
            })?;
            assert_eq!(seen, expect, "probe [{lo}, {hi}]");
        }
        Ok(())
    }

    #[test]
    fn early_termination() -> Result<()> {
        let pool = pool("early.db")?;
        let tree = BTree::open(&pool, 0)?;
        for g in 0..1000u64 {
            tree.insert((1, g), g as u32)?;
        }
        let mut n = 0;
        tree.for_each_range((1, 0), (1, u64::MAX), |_, _| {
            n += 1;
            n < 10
        })?;
        assert_eq!(n, 10);
        Ok(())
    }

    #[test]
    fn delete_then_reinsert() -> Result<()> {
        let pool = pool("delete.db")?;
        let tree = BTree::open(&pool, 0)?;
        for g in 0..5_000u64 {
            tree.insert((0, g), g as u32)?;
        }
        for g in (0..5_000u64).step_by(2) {
            assert_eq!(tree.delete((0, g))?, Some(g as u32));
        }
        assert_eq!(tree.delete((0, 0))?, None);
        assert_eq!(tree.len()?, 2_500);
        for g in 0..5_000u64 {
            let expect = (g % 2 == 1).then_some(g as u32);
            assert_eq!(tree.get((0, g))?, expect, "key {g}");
        }
        for g in (0..5_000u64).step_by(2) {
            tree.insert((0, g), 1)?;
        }
        assert_eq!(tree.len()?, 5_000);
        Ok(())
    }

    #[test]
    fn persists_across_reopen() -> Result<()> {
        let path = tmp("persist.db");
        {
            let pool = BufferPool::new(Pager::create(&path)?, 64);
            let tree = BTree::open(&pool, 0)?;
            for g in 0..3_000u64 {
                tree.insert((9, g), (g * 2) as u32)?;
            }
            pool.flush()?;
        }
        let pool = BufferPool::new(Pager::open(&path)?, 64);
        let tree = BTree::open(&pool, 0)?;
        assert_eq!(tree.len()?, 3_000);
        assert_eq!(tree.get((9, 1234))?, Some(2468));
        Ok(())
    }

    #[test]
    fn descending_and_ascending_inserts_split_correctly() -> Result<()> {
        for reverse in [false, true] {
            let pool = pool(if reverse { "desc.db" } else { "asc.db" })?;
            let tree = BTree::open(&pool, 0)?;
            let keys: Vec<u64> = if reverse {
                (0..10_000).rev().collect()
            } else {
                (0..10_000).collect()
            };
            for &g in &keys {
                tree.insert((0, g), g as u32)?;
            }
            assert_eq!(tree.len()?, 10_000);
            assert_eq!(tree.get((0, 9_999))?, Some(9_999));
            assert_eq!(tree.get((0, 0))?, Some(0));
        }
        Ok(())
    }

    #[test]
    fn two_trees_in_one_pool() -> Result<()> {
        let pool = pool("two.db")?;
        let a = BTree::open(&pool, 0)?;
        let b = BTree::open(&pool, 1)?;
        for g in 0..500u64 {
            a.insert((0, g), 1)?;
            b.insert((0, g), 2)?;
        }
        assert_eq!(a.get((0, 100))?, Some(1));
        assert_eq!(b.get((0, 100))?, Some(2));
        assert_eq!(a.len()?, 500);
        assert_eq!(b.len()?, 500);
        Ok(())
    }
}

impl BTree<'_> {
    /// Verifies the structural invariants of the whole tree: node types,
    /// in-node key ordering, separator bounds, node occupancy (no node over
    /// [`NODE_CAPACITY`], no empty internal node), page aliasing (every
    /// page reachable exactly once), leaf-chain order and reachability.
    /// Returns a description of the first violation.
    ///
    /// Every page of the tree (root, internals, leaves) via a DFS that
    /// only reads node headers — no entry validation, no key order checks.
    fn all_pages(&self) -> Result<Vec<PageId>> {
        let root = self.root();
        let mut pages = vec![root];
        let mut stack = vec![root];
        let limit = u64::from(self.pool.page_count()).saturating_add(1);
        while let Some(id) = stack.pop() {
            let children = self.pool.with_page(id, |p| match p.get_u8(0) {
                TYPE_INTERNAL => {
                    let n = count(p);
                    Ok((0..=n).map(|i| internal_child(p, i)).collect::<Vec<_>>())
                }
                TYPE_LEAF => Ok(Vec::new()),
                t => Err(corrupt(&format!("page walk hit unknown node type {t}"))),
            })??;
            for c in children {
                pages.push(c);
                stack.push(c);
            }
            if u64::try_from(pages.len()).unwrap_or(u64::MAX) > limit {
                return Err(corrupt("tree page walk exceeds the file page count"));
            }
        }
        Ok(pages)
    }

    /// Number of 4 KiB pages the tree occupies on disk.
    pub(crate) fn page_span(&self) -> Result<u64> {
        Ok(u64::try_from(self.all_pages()?.len()).unwrap_or(u64::MAX))
    }

    /// Intended for tests, recovery checks and the CLI's `stats --verify`.
    pub fn verify(&self) -> Result<BTreeCheck> {
        let mut check = BTreeCheck::default();
        let mut leftmost_leaf = PageId::NONE;
        let mut seen = std::collections::BTreeSet::new();
        self.verify_node(
            self.root(),
            None,
            None,
            0,
            &mut check,
            &mut leftmost_leaf,
            &mut seen,
        )?;
        // Walk the leaf chain and confirm global key order and entry count.
        let mut chained = 0u64;
        let mut prev: Option<Key> = None;
        let mut leaf = leftmost_leaf;
        while leaf != PageId::NONE {
            let (entries, next) = self.pool.with_page(leaf, |p| {
                if p.get_u8(0) != TYPE_LEAF {
                    return (None, PageId::NONE);
                }
                let n = count(p);
                let keys: Vec<Key> = (0..n).map(|i| leaf_key(p, i)).collect();
                (Some(keys), p.get_page_id(OFF_NEXT))
            })?;
            let Some(keys) = entries else {
                return Err(corrupt("leaf chain reaches a non-leaf page"));
            };
            for k in keys {
                if let Some(p) = prev {
                    if p >= k {
                        return Err(corrupt("leaf chain keys out of order"));
                    }
                }
                prev = Some(k);
                chained += 1;
            }
            leaf = next;
        }
        if chained != check.entries {
            return Err(corrupt("leaf chain entry count disagrees with tree walk"));
        }
        Ok(check)
    }

    #[allow(clippy::too_many_arguments)]
    fn verify_node(
        &self,
        page: PageId,
        lower: Option<Key>,
        upper: Option<Key>,
        depth: usize,
        check: &mut BTreeCheck,
        leftmost_leaf: &mut PageId,
        seen: &mut std::collections::BTreeSet<u32>,
    ) -> Result<()> {
        if depth > 64 {
            return Err(corrupt("tree too deep (cycle?)"));
        }
        if !seen.insert(page.0) {
            return Err(corrupt("page reachable twice (aliased child pointer)"));
        }
        enum Node {
            Leaf(Vec<Key>),
            Internal(Vec<Key>, Vec<PageId>),
            OverCapacity(&'static str),
        }
        // Check the stored count *before* walking entries: an over-capacity
        // count would index past the page end.
        let node = self.pool.with_page(page, |p| match p.get_u8(0) {
            TYPE_LEAF => {
                let n = count(p);
                if n > NODE_CAPACITY {
                    return Some(Node::OverCapacity("leaf over capacity"));
                }
                Some(Node::Leaf((0..n).map(|i| leaf_key(p, i)).collect()))
            }
            TYPE_INTERNAL => {
                let n = count(p);
                if n > NODE_CAPACITY {
                    return Some(Node::OverCapacity("internal node over capacity"));
                }
                let keys = (0..n).map(|i| internal_key(p, i)).collect();
                let children = (0..=n).map(|i| internal_child(p, i)).collect();
                Some(Node::Internal(keys, children))
            }
            _ => None,
        })?;
        match node {
            None => Err(corrupt("unknown node type")),
            Some(Node::OverCapacity(msg)) => Err(corrupt(msg)),
            Some(Node::Leaf(keys)) => {
                check.leaves += 1;
                check.entries += keys.len() as u64;
                check.depth = check.depth.max(depth);
                if *leftmost_leaf == PageId::NONE {
                    *leftmost_leaf = page;
                }
                for (a, b) in keys.iter().zip(keys.iter().skip(1)) {
                    if a >= b {
                        return Err(corrupt("leaf keys out of order"));
                    }
                }
                if let (Some(lo), Some(first)) = (lower, keys.first()) {
                    if *first < lo {
                        return Err(corrupt("leaf key below separator bound"));
                    }
                }
                if let (Some(hi), Some(last)) = (upper, keys.last()) {
                    if *last >= hi {
                        return Err(corrupt("leaf key at or above separator bound"));
                    }
                }
                Ok(())
            }
            Some(Node::Internal(keys, children)) => {
                if keys.is_empty() {
                    return Err(corrupt("internal node without separators"));
                }
                check.internals += 1;
                for (a, b) in keys.iter().zip(keys.iter().skip(1)) {
                    if a >= b {
                        return Err(corrupt("separators out of order"));
                    }
                }
                for (i, &child) in children.iter().enumerate() {
                    let lo = if i == 0 {
                        lower
                    } else {
                        keys.get(i - 1).copied()
                    };
                    let hi = if i == keys.len() {
                        upper
                    } else {
                        keys.get(i).copied()
                    };
                    self.verify_node(child, lo, hi, depth + 1, check, leftmost_leaf, seen)?;
                }
                Ok(())
            }
        }
    }
}

fn corrupt(msg: &str) -> crate::pager::StoreError {
    crate::pager::StoreError::Corrupt(msg.into())
}

/// Frees every page of the relation rooted at `meta_slot` and clears the
/// slot, so the relation can be rebuilt from scratch inside the same
/// transaction (used by the format-v3 inverted-relation migration).
pub(crate) fn free_tree(pool: &BufferPool, meta_slot: usize) -> Result<()> {
    if pool.meta(meta_slot) == 0 {
        return Ok(());
    }
    let tree = BTree { pool, meta_slot };
    for id in tree.all_pages()? {
        pool.free(id)?;
    }
    pool.set_meta(meta_slot, 0)
}

/// Result of [`BTree::verify`]: shape statistics of a healthy tree.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BTreeCheck {
    /// Number of leaf pages.
    pub leaves: u64,
    /// Number of internal pages.
    pub internals: u64,
    /// Total entries.
    pub entries: u64,
    /// Leaf depth (root = 0).
    pub depth: usize,
}

#[cfg(test)]
mod verify_tests {
    use super::*;
    use crate::buffer::BufferPool;
    use crate::pager::Pager;

    fn pool(name: &str) -> Result<BufferPool> {
        let dir = std::env::temp_dir().join(format!("pqgram-bverify-{}", std::process::id()));
        std::fs::create_dir_all(&dir).ok();
        let p = dir.join(name);
        std::fs::remove_file(&p).ok();
        let mut j = p.as_os_str().to_owned();
        j.push("-journal");
        std::fs::remove_file(std::path::PathBuf::from(j)).ok();
        Ok(BufferPool::new(Pager::create(&p)?, 128))
    }

    #[test]
    fn verify_healthy_tree() -> Result<()> {
        let pool = pool("healthy.db")?;
        let tree = BTree::open(&pool, 0)?;
        for g in 0..30_000u64 {
            tree.insert((g % 5, g.wrapping_mul(0x9e37_79b9)), 1)?;
        }
        let check = tree.verify()?;
        assert_eq!(check.entries, 30_000);
        assert!(check.leaves > 100);
        assert!(check.internals >= 1);
        assert!(check.depth >= 1);
        Ok(())
    }

    #[test]
    fn verify_after_deletions() -> Result<()> {
        let pool = pool("deleted.db")?;
        let tree = BTree::open(&pool, 0)?;
        for g in 0..10_000u64 {
            tree.insert((0, g), 1)?;
        }
        for g in (0..10_000u64).step_by(3) {
            tree.delete((0, g))?;
        }
        let check = tree.verify()?;
        assert_eq!(check.entries, 10_000 - 10_000u64.div_ceil(3));
        Ok(())
    }

    #[test]
    fn verify_detects_corruption() -> Result<()> {
        let pool = pool("corrupt.db")?;
        let tree = BTree::open(&pool, 0)?;
        for g in 0..5_000u64 {
            tree.insert((0, g), 1)?;
        }
        // Corrupt one leaf: swap two keys through the raw page.
        let leaf = {
            // Find any leaf by descending.
            let mut page = PageId((pool.meta(0) - 1) as u32);
            loop {
                let next = pool.with_page(page, |p| {
                    (p.get_u8(0) == TYPE_INTERNAL).then(|| internal_child(p, 0))
                })?;
                match next {
                    Some(child) => page = child,
                    None => break page,
                }
            }
        };
        pool.with_page_mut(leaf, |p| {
            let k0 = leaf_key(p, 0);
            let k1 = leaf_key(p, 1);
            let v0 = leaf_value(p, 0);
            let v1 = leaf_value(p, 1);
            leaf_write_at(p, 0, k1, v1);
            leaf_write_at(p, 1, k0, v0);
        })?;
        match tree.verify() {
            Err(crate::pager::StoreError::Corrupt(m)) => {
                assert!(m.contains("leaf keys out of order"), "{m}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        Ok(())
    }

    #[test]
    fn verify_reports_aliased_child_pointer() -> Result<()> {
        let pool = pool("aliased.db")?;
        let tree = BTree::open(&pool, 0)?;
        for g in 0..5_000u64 {
            tree.insert((0, g), 1)?;
        }
        // Make the root's two leftmost children the same page.
        let root = tree.root();
        let (is_internal, c0) = pool.with_page(root, |p| {
            (p.get_u8(0) == TYPE_INTERNAL, internal_child(p, 0))
        })?;
        assert!(is_internal, "5k inserts must split the root");
        pool.with_page_mut(root, |p| {
            let k = internal_key(p, 0);
            internal_write_at(p, 0, k, c0);
        })?;
        match tree.verify() {
            Err(crate::pager::StoreError::Corrupt(m)) => {
                assert!(m.contains("page reachable twice"), "{m}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        Ok(())
    }

    #[test]
    fn verify_reports_over_capacity_node() -> Result<()> {
        let pool = pool("overcap.db")?;
        let tree = BTree::open(&pool, 0)?;
        tree.insert((0, 1), 1)?;
        // Forge an impossible entry count in the root leaf header.
        pool.with_page_mut(tree.root(), |p| {
            p.put_u16(
                OFF_COUNT,
                u16::try_from(NODE_CAPACITY + 1).unwrap_or(u16::MAX),
            );
        })?;
        match tree.verify() {
            Err(crate::pager::StoreError::Corrupt(m)) => {
                assert!(m.contains("leaf over capacity"), "{m}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        Ok(())
    }
}

impl<'p> BTree<'p> {
    /// Bulk-loads a **sorted, deduplicated** key/value stream into an empty
    /// tree, building leaves left to right and internal levels bottom-up —
    /// `O(n)` page writes with ~90%-full leaves, versus `O(n log n)` descent
    /// costs and half-full splits for repeated inserts.
    ///
    /// Errors if the tree is not empty or the input is not strictly
    /// ascending.
    pub fn bulk_load<I>(&self, entries: I) -> Result<u64>
    where
        I: IntoIterator<Item = (Key, u32)>,
    {
        if !self.is_empty()? {
            return Err(corrupt("bulk_load requires an empty tree"));
        }
        // Fill factor: leave some slack for future inserts.
        let leaf_cap = NODE_CAPACITY * 9 / 10;
        let mut total = 0u64;
        let mut last_key: Option<Key> = None;

        // Current leaf being filled.
        let first_leaf = self.root();
        let mut cur_leaf = first_leaf;
        let mut cur_count = 0usize;
        // (first key, page) of every completed leaf, for the upper levels.
        let mut level: Vec<(Key, PageId)> = Vec::new();
        let mut first_key_of_cur: Option<Key> = None;

        for (key, value) in entries {
            if let Some(prev) = last_key {
                if prev >= key {
                    return Err(corrupt("bulk_load input not strictly ascending"));
                }
            }
            last_key = Some(key);
            if cur_count == leaf_cap {
                // Seal this leaf, start a new one.
                let next = self.pool.allocate()?;
                self.pool
                    .with_page_mut(cur_leaf, |p| p.put_page_id(OFF_NEXT, next))?;
                self.pool.with_page_mut(next, init_leaf)?;
                let Some(first) = first_key_of_cur.take() else {
                    return Err(corrupt("bulk_load sealed a leaf without a first key"));
                };
                level.push((first, cur_leaf));
                cur_leaf = next;
                cur_count = 0;
            }
            self.pool.with_page_mut(cur_leaf, |p| {
                leaf_write_at(p, cur_count, key, value);
                set_count(p, cur_count + 1);
            })?;
            if cur_count == 0 {
                first_key_of_cur = Some(key);
            }
            cur_count += 1;
            total += 1;
        }
        if let Some(fk) = first_key_of_cur {
            level.push((fk, cur_leaf));
        } else if total == 0 {
            return Ok(0); // empty input: the empty root leaf stands
        } else if cur_count == 0 {
            // The last allocated leaf stayed empty; it is harmless (searches
            // and scans tolerate empty leaves), keep it in the chain.
            let Some(lk) = last_key else {
                return Err(corrupt("bulk_load lost track of the last key"));
            };
            level.push((lk, cur_leaf));
        }

        // Build internal levels until one node remains.
        let int_cap = NODE_CAPACITY * 9 / 10;
        let mut current = level;
        while current.len() > 1 {
            let mut next_level: Vec<(Key, PageId)> = Vec::new();
            let mut i = 0usize;
            while i < current.len() {
                // One internal node covers up to int_cap + 1 children.
                let take = (int_cap + 1).min(current.len() - i);
                let node = self.pool.allocate()?;
                let group = current.get(i..i + take).unwrap_or(&[]);
                let Some(&(group_key, group_child)) = group.first() else {
                    return Err(corrupt("bulk_load built an empty internal group"));
                };
                self.pool.with_page_mut(node, |p| {
                    init_internal(p, group_child);
                    for (j, &(sep, child)) in group.iter().skip(1).enumerate() {
                        internal_write_at(p, j, sep, child);
                    }
                    set_count(p, group.len() - 1);
                })?;
                next_level.push((group_key, node));
                i += take;
            }
            current = next_level;
        }
        let Some(&(_, root)) = current.first() else {
            return Err(corrupt("bulk_load produced no root"));
        };
        self.set_root(root)?;
        Ok(total)
    }
}

#[cfg(test)]
mod bulk_tests {
    use super::*;
    use crate::buffer::BufferPool;
    use crate::pager::Pager;

    fn pool(name: &str) -> Result<BufferPool> {
        let dir = std::env::temp_dir().join(format!("pqgram-bulk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).ok();
        let p = dir.join(name);
        std::fs::remove_file(&p).ok();
        let mut j = p.as_os_str().to_owned();
        j.push("-journal");
        std::fs::remove_file(std::path::PathBuf::from(j)).ok();
        Ok(BufferPool::new(Pager::create(&p)?, 256))
    }

    #[test]
    fn bulk_load_then_read_everything() -> Result<()> {
        let pool = pool("basic.db")?;
        let tree = BTree::open(&pool, 0)?;
        let entries: Vec<(Key, u32)> = (0..50_000u64).map(|g| ((g % 7, g), g as u32)).collect();
        let mut sorted = entries.clone();
        sorted.sort_unstable();
        let n = tree.bulk_load(sorted.iter().copied())?;
        assert_eq!(n, 50_000);
        tree.verify()?;
        assert_eq!(tree.len()?, 50_000);
        for &(k, v) in sorted.iter().step_by(997) {
            assert_eq!(tree.get(k)?, Some(v));
        }
        // Inserts after bulk load still work (slack in leaves).
        tree.insert((99, 1), 7)?;
        assert_eq!(tree.get((99, 1))?, Some(7));
        tree.verify()?;
        Ok(())
    }

    #[test]
    fn bulk_load_small_inputs() -> Result<()> {
        for n in [0u64, 1, 2, 200] {
            let p = pool(&format!("small{n}.db"))?;
            let tree = BTree::open(&p, 0)?;
            tree.bulk_load((0..n).map(|g| ((0, g), 1)))?;
            assert_eq!(tree.len()?, n);
            tree.verify()?;
        }
        Ok(())
    }

    #[test]
    fn bulk_load_rejects_unsorted_and_nonempty() -> Result<()> {
        let p = pool("reject.db")?;
        let tree = BTree::open(&p, 0)?;
        assert!(tree.bulk_load([((0, 2), 1), ((0, 1), 1)]).is_err());
        // After the failed load the tree may hold a prefix; re-check the
        // empty-precondition path with a fresh tree.
        let pool2 = pool("reject2.db")?;
        let tree2 = BTree::open(&pool2, 0)?;
        tree2.insert((0, 0), 1)?;
        assert!(tree2.bulk_load([((0, 1), 1)]).is_err());
        Ok(())
    }

    #[test]
    fn batch_matches_individual_ops() -> Result<()> {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for round in 0..4 {
            let pool_a = pool(&format!("batch-a{round}.db"))?;
            let a = BTree::open(&pool_a, 0)?;
            let pool_b = pool(&format!("batch-b{round}.db"))?;
            let b = BTree::open(&pool_b, 0)?;
            // Seed both trees with the same base content.
            let base: Vec<(Key, u32)> = (0..3_000u64).map(|g| ((g % 4, g * 3), 1)).collect();
            let mut sorted = base.clone();
            sorted.sort_unstable();
            a.bulk_load(sorted.iter().copied())?;
            b.bulk_load(sorted.iter().copied())?;
            // A mixed batch: overwrites, fresh inserts, deletes of present
            // and absent keys.
            let mut ops: Vec<(Key, Option<u32>)> = Vec::new();
            for g in 0..4_000u64 {
                let key = (g % 4, g * 3 + u64::from(rng.random_range(0u32..2)));
                match rng.random_range(0u32..3) {
                    0 => ops.push((key, Some(g as u32))),
                    1 => ops.push((key, None)),
                    _ => {}
                }
            }
            ops.sort_unstable_by_key(|&(k, _)| k);
            ops.dedup_by_key(|&mut (k, _)| k);
            a.apply_batch_sorted(ops.iter().copied())?;
            for &(k, v) in &ops {
                match v {
                    Some(v) => {
                        b.insert(k, v)?;
                    }
                    None => {
                        b.delete(k)?;
                    }
                }
            }
            let dump = |t: &BTree| -> Result<Vec<(Key, u32)>> {
                let mut out = Vec::new();
                t.for_each_range((0, 0), (u64::MAX, u64::MAX), |k, val| {
                    out.push((k, val));
                    true
                })?;
                Ok(out)
            };
            assert_eq!(dump(&a)?, dump(&b)?, "round {round}");
            a.verify()?;
        }
        Ok(())
    }

    #[test]
    fn batch_splits_under_dense_ascending_inserts() -> Result<()> {
        let p = pool("batch-split.db")?;
        let tree = BTree::open(&p, 0)?;
        // Dense ascending run: every leaf on the path fills and splits
        // repeatedly while the batch holds a cached leaf.
        tree.apply_batch_sorted((0..30_000u64).map(|g| ((0, g), Some(g as u32))))?;
        let check = tree.verify()?;
        assert_eq!(check.entries, 30_000);
        assert!(check.depth >= 1);
        // Deleting a dense run through the batch path, interleaved with
        // absent keys, also holds up.
        tree.apply_batch_sorted((0..40_000u64).map(|g| ((0, g), None)))?;
        assert_eq!(tree.verify()?.entries, 0);
        Ok(())
    }

    #[test]
    fn batch_rejects_unsorted_input() -> Result<()> {
        let p = pool("batch-reject.db")?;
        let tree = BTree::open(&p, 0)?;
        let err = tree.apply_batch_sorted([((0, 2), Some(1)), ((0, 1), Some(1))]);
        assert!(err.is_err());
        let dup = tree.apply_batch_sorted([((0, 5), Some(1)), ((0, 5), None)]);
        assert!(dup.is_err(), "duplicate keys are not ascending");
        Ok(())
    }

    #[test]
    fn bulk_load_matches_incremental_inserts() -> Result<()> {
        let pool_a = pool("cmp-a.db")?;
        let a = BTree::open(&pool_a, 0)?;
        let pool_b = pool("cmp-b.db")?;
        let b = BTree::open(&pool_b, 0)?;
        let entries: Vec<(Key, u32)> = (0..10_000u64)
            .map(|g| ((g % 3, g * 17), (g % 91) as u32))
            .collect();
        let mut sorted = entries.clone();
        sorted.sort_unstable();
        a.bulk_load(sorted.iter().copied())?;
        for &(k, v) in &entries {
            b.insert(k, v)?;
        }
        let dump = |t: &BTree| -> Result<Vec<(Key, u32)>> {
            let mut v = Vec::new();
            t.for_each_range((0, 0), (u64::MAX, u64::MAX), |k, val| {
                v.push((k, val));
                true
            })?;
            Ok(v)
        };
        assert_eq!(dump(&a)?, dump(&b)?);
        a.verify()?;
        b.verify()?;
        Ok(())
    }
}
