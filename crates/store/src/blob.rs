//! Blob storage: arbitrary byte values in chained pages.
//!
//! The document store keeps each document's serialized tree next to its
//! index rows so that edit scripts can be derived and replayed against the
//! stored version. Blobs are keyed by `u64`, stored in a chain of pages,
//! and looked up through a directory B+-tree (`key → first page`), so they
//! share the pager/journal transaction machinery with the index.
//!
//! Chain page layout:
//!
//! ```text
//! 0  next page (PageId, NONE at the tail)
//! 4  payload length in this page (u16)
//! 8  payload …
//! ```

use crate::btree::BTree;
use crate::buffer::BufferPool;
use crate::page::{PageId, PAGE_SIZE};
use crate::pager::Result;

const OFF_NEXT: usize = 0;
const OFF_LEN: usize = 4;
const OFF_PAYLOAD: usize = 8;
/// Payload bytes per chain page.
pub const BLOB_PAGE_PAYLOAD: usize = PAGE_SIZE - OFF_PAYLOAD;

/// A blob namespace backed by a directory tree in `meta_slot`.
pub struct BlobStore<'p> {
    pool: &'p BufferPool,
    directory: BTree<'p>,
}

impl<'p> BlobStore<'p> {
    /// Opens (or creates) the blob directory rooted at `meta_slot`.
    pub fn open(pool: &'p BufferPool, meta_slot: usize) -> Result<Self> {
        Ok(BlobStore {
            pool,
            directory: BTree::open(pool, meta_slot)?,
        })
    }

    /// Stores `data` under `key`, replacing any previous blob.
    pub fn put(&self, key: u64, data: &[u8]) -> Result<()> {
        self.delete(key)?;
        // Write the chain back-to-front so each page knows its successor.
        let mut next = PageId::NONE;
        let chunks: Vec<&[u8]> = data.chunks(BLOB_PAGE_PAYLOAD).collect();
        if chunks.is_empty() {
            // Empty blob: a single empty page marks existence.
            let page = self.pool.allocate()?;
            self.pool.with_page_mut(page, |p| {
                p.put_page_id(OFF_NEXT, PageId::NONE);
                p.put_u16(OFF_LEN, 0);
            })?;
            self.directory.insert((key, 0), page.0)?;
            return Ok(());
        }
        for chunk in chunks.iter().rev() {
            let page = self.pool.allocate()?;
            self.pool.with_page_mut(page, |p| {
                p.put_page_id(OFF_NEXT, next);
                p.put_u16(OFF_LEN, chunk.len() as u16);
                p.put_slice(OFF_PAYLOAD, chunk);
            })?;
            next = page;
        }
        self.directory.insert((key, 0), next.0)?;
        Ok(())
    }

    /// Reads the blob stored under `key`.
    pub fn get(&self, key: u64) -> Result<Option<Vec<u8>>> {
        let Some(first) = self.directory.get((key, 0))? else {
            return Ok(None);
        };
        let mut out = Vec::new();
        let mut cur = PageId(first);
        while cur != PageId::NONE {
            let next = self.pool.with_page(cur, |p| {
                let len = p.get_u16(OFF_LEN) as usize;
                out.extend_from_slice(p.slice(OFF_PAYLOAD, len));
                p.get_page_id(OFF_NEXT)
            })?;
            cur = next;
        }
        Ok(Some(out))
    }

    /// Removes the blob under `key`, freeing its pages. Returns `true` if it
    /// existed.
    pub fn delete(&self, key: u64) -> Result<bool> {
        let Some(first) = self.directory.delete((key, 0))? else {
            return Ok(false);
        };
        let mut cur = PageId(first);
        while cur != PageId::NONE {
            let next = self.pool.with_page(cur, |p| p.get_page_id(OFF_NEXT))?;
            self.pool.free(cur)?;
            cur = next;
        }
        Ok(true)
    }

    /// True if a blob exists under `key`.
    pub fn contains(&self, key: u64) -> Result<bool> {
        Ok(self.directory.get((key, 0))?.is_some())
    }

    /// All keys, ascending.
    pub fn keys(&self) -> Result<Vec<u64>> {
        let mut keys = Vec::new();
        self.directory
            .for_each_range((0, 0), (u64::MAX, u64::MAX), |(k, _), _| {
                keys.push(k);
                true
            })?;
        Ok(keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::Pager;
    use std::path::PathBuf;

    use crate::pager::Result;

    fn pool(name: &str) -> Result<BufferPool> {
        let dir = std::env::temp_dir().join(format!("pqgram-blob-{}", std::process::id()));
        std::fs::create_dir_all(&dir).ok();
        let p = dir.join(name);
        std::fs::remove_file(&p).ok();
        let mut j = p.as_os_str().to_owned();
        j.push("-journal");
        std::fs::remove_file(PathBuf::from(j)).ok();
        Ok(BufferPool::new(Pager::create(&p)?, 64))
    }

    #[test]
    fn small_blob_roundtrip() -> Result<()> {
        let pool = pool("small.db")?;
        let blobs = BlobStore::open(&pool, 1)?;
        blobs.put(7, b"hello world")?;
        assert_eq!(blobs.get(7)?, Some(b"hello world".to_vec()));
        assert!(blobs.get(8)?.is_none());
        assert!(blobs.contains(7)?);
        Ok(())
    }

    #[test]
    fn empty_blob_is_distinguishable_from_absent() -> Result<()> {
        let pool = pool("empty.db")?;
        let blobs = BlobStore::open(&pool, 1)?;
        blobs.put(1, b"")?;
        assert_eq!(blobs.get(1)?, Some(Vec::new()));
        assert!(blobs.contains(1)?);
        assert!(!blobs.contains(2)?);
        Ok(())
    }

    #[test]
    fn multi_page_blob_roundtrip() -> Result<()> {
        let pool = pool("big.db")?;
        let blobs = BlobStore::open(&pool, 1)?;
        let data: Vec<u8> = (0..50_000u32).map(|i| (i * 31 % 251) as u8).collect();
        blobs.put(3, &data)?;
        assert_eq!(blobs.get(3)?, Some(data));
        Ok(())
    }

    #[test]
    fn replace_frees_old_chain() -> Result<()> {
        let pool = pool("replace.db")?;
        let blobs = BlobStore::open(&pool, 1)?;
        let big = vec![0xabu8; 30_000];
        blobs.put(1, &big)?;
        let pages_after_big = pool.page_count();
        blobs.put(1, b"tiny")?;
        assert_eq!(blobs.get(1)?, Some(b"tiny".to_vec()));
        // Replacing with another big blob must reuse the freed pages.
        blobs.put(1, &big)?;
        assert_eq!(
            pool.page_count(),
            pages_after_big,
            "chain pages must be recycled"
        );
        assert_eq!(blobs.get(1)?, Some(big));
        Ok(())
    }

    #[test]
    fn delete_removes_and_frees() -> Result<()> {
        let pool = pool("delete.db")?;
        let blobs = BlobStore::open(&pool, 1)?;
        blobs.put(5, &vec![1u8; 10_000])?;
        assert!(blobs.delete(5)?);
        assert!(!blobs.delete(5)?);
        assert!(blobs.get(5)?.is_none());
        Ok(())
    }

    #[test]
    fn many_blobs_keys_sorted() -> Result<()> {
        let pool = pool("many.db")?;
        let blobs = BlobStore::open(&pool, 1)?;
        for k in [9u64, 2, 55, 13] {
            blobs.put(k, &k.to_le_bytes())?;
        }
        assert_eq!(blobs.keys()?, vec![2, 9, 13, 55]);
        for k in [9u64, 2, 55, 13] {
            assert_eq!(blobs.get(k)?, Some(k.to_le_bytes().to_vec()));
        }
        Ok(())
    }

    #[test]
    fn blobs_participate_in_transactions() -> Result<()> {
        let pool = pool("tx.db")?;
        let blobs = BlobStore::open(&pool, 1)?;
        blobs.put(1, b"committed")?;
        pool.flush()?;
        pool.begin()?;
        blobs.put(1, b"uncommitted")?;
        blobs.put(2, b"new")?;
        pool.rollback()?;
        let blobs = BlobStore::open(&pool, 1)?;
        assert_eq!(blobs.get(1)?, Some(b"committed".to_vec()));
        assert!(blobs.get(2)?.is_none());
        Ok(())
    }
}
