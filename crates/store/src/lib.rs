#![warn(missing_docs)]
#![forbid(unsafe_code)]
//! Persistent storage for the pq-gram index.
//!
//! The paper stores the index of a forest as a relation `(treeId, pqg, cnt)`
//! in an RDBMS and stresses that the index is *persistent* — lookups and
//! incremental updates run against stored data, never against freshly
//! extracted pq-grams. This crate supplies that substrate as a small,
//! self-contained storage engine:
//!
//! * [`crc`] — CRC-32 checksums (from scratch);
//! * [`page`] — 4 KiB page abstraction with typed little-endian accessors;
//! * [`pager`] — a page file with a header page and a free list;
//! * [`journal`] — a rollback journal giving atomic multi-page commits
//!   (crash recovery restores the pre-transaction images);
//! * [`buffer`] — a clock-eviction buffer pool over the pager;
//! * [`btree`] — a B+-tree with fixed-width `(tree_id, gram)` keys and `u32`
//!   counts, leaf-chained for range scans;
//! * [`mod@ops`] — the relation layer shared by both stores: the forward
//!   relation `(treeId, pqg, cnt)` of the paper plus an inverted postings
//!   relation `(pqg, treeId, cnt)` and a per-tree totals relation, all
//!   maintained together in every transaction, with a candidate-merge
//!   lookup plan over the inverted relation;
//! * [`index_store`] — the persistent forest index: per-tree pq-gram bags,
//!   approximate lookups and transactional application of incremental
//!   update deltas ([`pqgram_core::maintain::IndexDelta`]);
//! * [`segmented`] — the segmented ingest path over the same relation
//!   format: an in-memory memtable flushes into immutable sorted segment
//!   files under one journal-protected manifest, background compaction
//!   folds segments back into the main file, and lookups candidate-merge
//!   across all live sources with results bit-identical to a single-file
//!   store;
//! * [`vfs`] — the file-system seam: [`vfs::RealVfs`] passes through to
//!   `std::fs`, [`vfs::FaultVfs`] deterministically injects crashes and
//!   I/O errors so the crash-recovery invariants above are tested at every
//!   single I/O boundary, not just at hand-picked points.
//!
//! # Quick example
//!
//! ```
//! use pqgram_core::{build_index, PQParams, TreeId};
//! use pqgram_store::index_store::IndexStore;
//! use pqgram_tree::{LabelTable, Tree};
//!
//! let dir = std::env::temp_dir().join(format!("pqgram-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("forest.pqg");
//!
//! let mut labels = LabelTable::new();
//! let mut tree = Tree::with_root(labels.intern("a"));
//! tree.add_child(tree.root(), labels.intern("b"));
//! let params = PQParams::default();
//!
//! let mut store = IndexStore::create(&path, params).unwrap();
//! store.put_tree(TreeId(1), &build_index(&tree, &labels, params)).unwrap();
//! drop(store);
//!
//! // Reopen: the index is still there.
//! let store = IndexStore::open(&path).unwrap();
//! let back = store.tree_index(TreeId(1)).unwrap().unwrap();
//! assert_eq!(back.total(), build_index(&tree, &labels, params).total());
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

pub mod blob;
pub mod btree;
pub mod buffer;
mod bytes;
pub mod crc;
pub mod document;
mod fence;
mod filter;
pub mod index_store;
pub mod journal;
mod manifest;
mod memtable;
pub mod ops;
pub mod page;
pub mod pager;
mod postings;
mod segment;
pub mod segmented;
pub mod vfs;

/// Structure-aware fuzzing hooks over the internal decode entry points.
///
/// Hidden from docs and exempt from any stability promise: this exists so
/// the out-of-crate byte-mutator harness (`tests/decode_fuzz.rs`) can
/// drive `pub(crate)` decoders — posting-block decode, fence
/// construction/probe — directly, without widening the real API. Never
/// call this from production code.
#[doc(hidden)]
pub mod fuzz {
    use crate::pager::Result;
    use crate::postings;

    /// Upper bound on rows per posting block (mirrors the internal cap).
    pub const MAX_BLOCK_ROWS: usize = postings::MAX_BLOCK_ROWS;

    /// Encodes sorted `((gram, treeId), count)` rows into one block entry
    /// (used to build seed corpora, not to fuzz the encoder).
    pub fn encode_block(rows: &[((u64, u64), u32)]) -> Result<Vec<u8>> {
        postings::encode_block(rows)
    }

    /// Full posting-block decode. The contract under fuzzing: any byte
    /// string returns `Ok` or `Err(Corrupt)` — never a panic, hang, or
    /// allocation beyond the structural caps.
    pub fn decode_block(bytes: &[u8]) -> Result<Vec<((u64, u64), u32)>> {
        postings::decode_block(bytes).map(|d| d.rows)
    }

    /// Gram-filter page layout constants for field-targeted mutation and
    /// CRC repair in the fuzz harness (`crate::filter` documents the
    /// format; these mirror its internal offsets).
    pub mod filter_layout {
        /// Trailing CRC-32 offset on the filter header page.
        pub const OFF_HEADER_CRC: usize = crate::filter::OFF_HEADER_CRC;
        /// Payload CRC-32 offset on data / indirect pages.
        pub const OFF_PAGE_CRC: usize = crate::filter::OFF_PAGE_CRC;
        /// Payload start on data / indirect pages.
        pub const OFF_PAYLOAD: usize = crate::filter::OFF_PAYLOAD;
        /// Payload bytes covered by a data page's CRC.
        pub const DATA_PAYLOAD: usize = crate::filter::DATA_PAYLOAD;
    }

    /// Byte offsets of the gram-filter pages (header page first, then data
    /// pages, then indirect pages) inside the single-file store at `path`;
    /// empty when no valid filter is installed. For aiming on-disk
    /// mutations at the filter decoder.
    pub fn filter_page_offsets(path: &std::path::Path) -> Result<Vec<u64>> {
        let pool = crate::buffer::BufferPool::new(crate::pager::Pager::open(path)?, 16);
        let ids = crate::filter::page_ids(&pool)?.unwrap_or_default();
        let page = u64::try_from(crate::page::PAGE_SIZE).unwrap_or(0);
        Ok(ids.iter().map(|id| u64::from(id.0) * page).collect())
    }

    /// Runs the gram-filter loader against the store file at `path`:
    /// `Ok(true)` means a filter loaded, `Ok(false)` that it was rejected
    /// (the filter is advisory, so rejection is a clean outcome). The
    /// contract under fuzzing: any on-disk bytes return `Ok` or `Err` —
    /// never a panic, hang, or allocation beyond the structural caps.
    pub fn filter_load(path: &std::path::Path) -> Result<bool> {
        let pool = crate::buffer::BufferPool::new(crate::pager::Pager::open(path)?, 16);
        Ok(crate::filter::load(&pool)?.is_some())
    }

    /// A learned fence built over a sorted gram column (treeIds and
    /// inline values synthesised), probed via [`Fence::locate`].
    pub struct Fence(crate::fence::Fence);

    impl Fence {
        pub fn over_grams(grams: Vec<u64>) -> Fence {
            let n = grams.len();
            let tids = (0..u64::try_from(n).unwrap_or(0)).collect();
            let vals = vec![postings::INLINE_BIT | 1; n];
            Fence(crate::fence::Fence::from_rows(grams, tids, vals))
        }

        pub fn locate(&self, gram: u64) -> std::ops::Range<usize> {
            self.0.locate(gram)
        }
    }
}

pub use btree::BTree;
pub use document::DocumentStore;
pub use index_store::{IndexStore, IndexStoreReader};
pub use ops::{InvertedEncoding, LookupPlan, LookupStats, RelationBytes, StoreCheck, MAIN_SOURCE};
pub use page::{PageBuf, PageId, PAGE_SIZE};
pub use pager::{Pager, StoreError};
pub use segmented::{SegmentedIndexStore, SegmentedReader, MEMTABLE_SOURCE};
pub use vfs::{CrashMode, FaultVfs, RealVfs, Vfs, VfsFile};
