//! CRC-32 (IEEE 802.3 polynomial), slicing-by-8, implemented from scratch.
//!
//! Used to checksum journal entries, the pager header and posting-block
//! entries so that torn writes and bit rot are detected during crash
//! recovery and lookups. Posting-block decodes checksum every probed
//! block, so the hot loop processes eight bytes per step against eight
//! compile-time tables instead of one byte against one.

/// Reflected IEEE polynomial.
const POLY: u32 = 0xedb8_8320;

/// Slicing-by-8 lookup tables, built at compile time. `TABLES[0]` is the
/// classic byte-at-a-time table; `TABLES[k]` advances a byte `k` positions
/// further through the register.
const TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xff) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

/// One table lookup. The `& 0xff` mask keeps the index below 256 by
/// construction, so the lookup is total even without the bound encoded in
/// the type.
#[inline(always)]
fn tab(k: usize, i: u32) -> u32 {
    TABLES
        .get(k)
        .and_then(|t| t.get(usize::try_from(i & 0xff).unwrap_or(0)))
        .copied()
        .unwrap_or(0)
}

/// Computes the CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    update(0xffff_ffff, data) ^ 0xffff_ffff
}

/// Streaming update (state is the raw register, start from `0xffff_ffff`).
pub fn update(mut state: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes(c.get(..4).and_then(|s| s.try_into().ok()).unwrap_or([0; 4]))
            ^ state;
        let hi = u32::from_le_bytes(c.get(4..).and_then(|s| s.try_into().ok()).unwrap_or([0; 4]));
        state = tab(7, lo)
            ^ tab(6, lo >> 8)
            ^ tab(5, lo >> 16)
            ^ tab(4, lo >> 24)
            ^ tab(3, hi)
            ^ tab(2, hi >> 8)
            ^ tab(1, hi >> 16)
            ^ tab(0, hi >> 24);
    }
    for &b in chunks.remainder() {
        state = (state >> 8) ^ tab(0, state ^ u32::from(b));
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xe8b7_be43);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0u8; 4096];
        data[100] = 7;
        let base = crc32(&data);
        for bit in [0usize, 1, 4095 * 8 + 7, 2048 * 8] {
            let mut corrupted = data.clone();
            corrupted[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32(&corrupted), base, "flip at bit {bit} undetected");
        }
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let oneshot = crc32(&data);
        let mut state = 0xffff_ffff;
        for chunk in data.chunks(117) {
            state = update(state, chunk);
        }
        assert_eq!(state ^ 0xffff_ffff, oneshot);
    }
}
