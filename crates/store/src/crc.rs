//! CRC-32 (IEEE 802.3 polynomial), table-driven, implemented from scratch.
//!
//! Used to checksum journal entries and the pager header so that torn
//! writes are detected during crash recovery.

/// Reflected IEEE polynomial.
const POLY: u32 = 0xedb8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Computes the CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    update(0xffff_ffff, data) ^ 0xffff_ffff
}

/// Streaming update (state is the raw register, start from `0xffff_ffff`).
pub fn update(mut state: u32, data: &[u8]) -> u32 {
    for &b in data {
        // The `& 0xff` mask keeps the index below 256 by construction, so
        // the lookup is total even without the bound encoded in the type.
        let entry = TABLE.get(((state ^ b as u32) & 0xff) as usize);
        state = (state >> 8) ^ entry.copied().unwrap_or(0);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xe8b7_be43);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0u8; 4096];
        data[100] = 7;
        let base = crc32(&data);
        for bit in [0usize, 1, 4095 * 8 + 7, 2048 * 8] {
            let mut corrupted = data.clone();
            corrupted[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32(&corrupted), base, "flip at bit {bit} undetected");
        }
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let oneshot = crc32(&data);
        let mut state = 0xffff_ffff;
        for chunk in data.chunks(117) {
            state = update(state, chunk);
        }
        assert_eq!(state ^ 0xffff_ffff, oneshot);
    }
}
