//! Per-source gram membership filters: a split-block Bloom filter over the
//! distinct grams of one store file, persisted in dedicated pages under the
//! same journal commit as the relations it summarises.
//!
//! Before a lookup probes a source's posting directory (or fence), it
//! consults the source's filter: query grams whose filter bits are absent
//! provably have no postings here and are never probed, and a source
//! containing *none* of the query's grams is skipped without touching its
//! relations at all. The filter is strictly **advisory** — every answer a
//! lookup produces is re-derived from the relations, so a false positive
//! only costs an empty probe and a dropped (or absent, or corrupt) filter
//! only costs un-skipped work. What must hold is the *superset invariant*:
//! a filter that loads successfully contains every distinct gram of the
//! forward relation; [`crate::ops::verify_relations`] audits exactly that,
//! which puts filter maintenance under the same crash-enumeration
//! microscope as the relations themselves.
//!
//! # Shape
//!
//! A split-block Bloom filter ([Putze, Sanders, Singler 2007]; the same
//! shape MSQ-Index uses per partition): ~[`BITS_PER_GRAM`] bits per
//! expected gram, rounded up to 512-bit blocks of eight 64-bit words. A
//! gram hashes (splitmix64, multiply-shift range reduction) to one block
//! and sets one bit per word — eight probes, all inside one cache line
//! in RAM and always inside one page on disk.
//!
//! # On-disk layout
//!
//! Meta slot [`SLOT_FILTER`] holds the header page id (0 = no filter).
//!
//! * **Header page** (`"PQGF"`): version, `nblocks`, gram `capacity`, the
//!   approximate distinct-gram `count`, the data-page table (first
//!   [`MAX_DIRECT`] ids inline, the rest on indirect pages), and a trailing
//!   CRC-32 over the whole page.
//! * **Data page** (`"PQFD"`): [`BLOCKS_PER_PAGE`] filter blocks as
//!   little-endian words, CRC-32 over the payload. Blocks never straddle
//!   pages.
//! * **Indirect page** (`"PQFI"`): up to [`IDS_PER_INDIRECT`] further data
//!   page ids, CRC-32 over the id array.
//!
//! Deletes leave the filter untouched (bits are never cleared), keeping it
//! a superset at the price of stale false positives. Inserts set bits in
//! place and bump `count` for grams that were new; once `count` exceeds
//! `capacity` the filter is rebuilt from a forward-relation scan at twice
//! the distinct-gram count, inside the same transaction.

use crate::btree::BTree;
use crate::buffer::BufferPool;
use crate::crc::crc32;
use crate::page::{PageId, PAGE_SIZE};
use crate::pager::Result;
use pqgram_tree::FxHashSet;

/// Meta slot holding the filter header page id (0 = no filter).
pub(crate) const SLOT_FILTER: usize = 9;

/// Target filter density: bits per expected distinct gram.
const BITS_PER_GRAM: u64 = 10;
/// Capacity floor for newly created filters (grams).
const DEFAULT_CAPACITY: u64 = 1024;
/// Words per 512-bit filter block.
const BLOCK_WORDS: usize = 8;
/// Filter blocks per data page (504 words / 4032 payload bytes, so blocks
/// never straddle a page boundary).
const BLOCKS_PER_PAGE: usize = 63;
/// Upper bound on `nblocks` accepted from disk (128 MiB of filter),
/// bounding the allocation a corrupt-but-CRC-colliding header could ask
/// for.
const MAX_NBLOCKS: u64 = 1 << 24;

const MAGIC_HEADER: u32 = u32::from_le_bytes(*b"PQGF");
const MAGIC_DATA: u32 = u32::from_le_bytes(*b"PQFD");
const MAGIC_INDIRECT: u32 = u32::from_le_bytes(*b"PQFI");
const FILTER_VERSION: u32 = 1;

// Header page field offsets.
const OFF_MAGIC: usize = 0;
const OFF_VERSION: usize = 4;
const OFF_NBLOCKS: usize = 8;
const OFF_CAPACITY: usize = 16;
const OFF_COUNT: usize = 24;
const OFF_NPAGES: usize = 32;
const OFF_NINDIRECT: usize = 36;
const OFF_DIRECT: usize = 40;
/// Direct data-page ids held on the header page itself.
const MAX_DIRECT: usize = 512;
const OFF_INDIRECT: usize = OFF_DIRECT + 4 * MAX_DIRECT;
pub(crate) const OFF_HEADER_CRC: usize = PAGE_SIZE - 4;
/// Indirect page ids that fit on the header page.
const MAX_INDIRECT: usize = (OFF_HEADER_CRC - OFF_INDIRECT) / 4;

// Data / indirect page field offsets (shared shape: magic, CRC, payload).
pub(crate) const OFF_PAGE_CRC: usize = 4;
pub(crate) const OFF_PAYLOAD: usize = 8;
pub(crate) const DATA_PAYLOAD: usize = BLOCKS_PER_PAGE * BLOCK_WORDS * 8;
/// Data-page ids per indirect page.
const IDS_PER_INDIRECT: usize = (PAGE_SIZE - OFF_PAYLOAD) / 4;

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Block index of a gram: multiply-shift range reduction of a full-width
/// hash, bias-free for any `nblocks`.
fn block_of(nblocks: u64, gram: u64) -> usize {
    let h = splitmix64(gram ^ 0x517c_c1b7_2722_0a95);
    usize::try_from((u128::from(h) * u128::from(nblocks)) >> 64).unwrap_or(0)
}

/// One bit position (0..64) per block word, from an independent hash.
fn word_bits(gram: u64) -> [u32; BLOCK_WORDS] {
    let h = splitmix64(gram ^ 0x2545_f491_4f6c_dd1d);
    std::array::from_fn(|i| {
        let byte = (h >> (8 * i)) & 0x3f;
        u32::try_from(byte).unwrap_or(0)
    })
}

fn blocks_for_capacity(capacity: u64) -> u64 {
    (capacity.max(1) * BITS_PER_GRAM).div_ceil(512).max(1)
}

fn pages_for_blocks(nblocks: u64) -> u64 {
    nblocks.div_ceil(BLOCKS_PER_PAGE as u64)
}

fn indirect_for_pages(npages: u64) -> u64 {
    npages
        .saturating_sub(MAX_DIRECT as u64)
        .div_ceil(IDS_PER_INDIRECT as u64)
}

/// The RAM-resident filter an open store probes against. Byte-identical to
/// the persisted words: point inserts can be mirrored here without
/// re-reading the file.
#[derive(Clone, Debug)]
pub(crate) struct GramFilter {
    nblocks: u64,
    words: Vec<u64>,
}

impl GramFilter {
    fn empty(nblocks: u64) -> Self {
        let words = vec![0u64; usize::try_from(nblocks).unwrap_or(usize::MAX).saturating_mul(BLOCK_WORDS)];
        GramFilter { nblocks, words }
    }

    /// Might `gram` be stored in this source? `false` is definitive.
    pub(crate) fn contains(&self, gram: u64) -> bool {
        let base = block_of(self.nblocks, gram) * BLOCK_WORDS;
        word_bits(gram)
            .iter()
            .enumerate()
            .all(|(i, &bit)| self.words.get(base + i).is_some_and(|w| w >> bit & 1 == 1))
    }

    /// Sets `gram`'s bits; returns `true` if any bit was newly set. Mirrors
    /// exactly what [`insert_grams`] does to the persisted words.
    pub(crate) fn insert(&mut self, gram: u64) -> bool {
        let base = block_of(self.nblocks, gram) * BLOCK_WORDS;
        let mut fresh = false;
        for (i, &bit) in word_bits(gram).iter().enumerate() {
            if let Some(w) = self.words.get_mut(base + i) {
                fresh |= *w >> bit & 1 == 0;
                *w |= 1u64 << bit;
            }
        }
        fresh
    }

    /// Total filter bits (for stats/tests).
    pub(crate) fn bits(&self) -> u64 {
        self.nblocks * 512
    }
}

/// The parsed, validated header: where every filter page lives.
struct Layout {
    header: PageId,
    nblocks: u64,
    capacity: u64,
    count: u64,
    /// Data pages in block order.
    pages: Vec<PageId>,
    /// Indirect pages (freed with the filter, otherwise opaque).
    indirect: Vec<PageId>,
}

// analyze: validates(pageid)
fn plausible_id(raw: u32) -> Option<PageId> {
    if raw == 0 || raw == u32::MAX {
        return None;
    }
    Some(PageId(raw))
}

/// Reads and validates the filter header (magic, version, CRC, consistent
/// page counts, plausible page ids). Any validation failure yields
/// `Ok(None)` — the filter is advisory and an unreadable one is simply
/// not used — while pool-level I/O errors propagate.
// analyze: validates(len|offset|pageid|count)
fn read_layout(pool: &BufferPool) -> Result<Option<Layout>> {
    let slot = pool.meta(SLOT_FILTER);
    let Ok(raw) = u32::try_from(slot) else {
        return Ok(None);
    };
    let Some(header) = plausible_id(raw) else {
        return Ok(None);
    };
    let parsed = pool.with_page(header, |p| {
        if p.get_u32(OFF_MAGIC) != MAGIC_HEADER
            || p.get_u32(OFF_VERSION) != FILTER_VERSION
            || crc32(p.slice(0, OFF_HEADER_CRC)) != p.get_u32(OFF_HEADER_CRC)
        {
            return None;
        }
        let nblocks = p.get_u64(OFF_NBLOCKS);
        let capacity = p.get_u64(OFF_CAPACITY);
        let count = p.get_u64(OFF_COUNT);
        let npages = u64::from(p.get_u32(OFF_NPAGES));
        let nindirect = u64::from(p.get_u32(OFF_NINDIRECT));
        if nblocks == 0
            || nblocks > MAX_NBLOCKS
            || npages != pages_for_blocks(nblocks)
            || nindirect != indirect_for_pages(npages)
            || nindirect > MAX_INDIRECT as u64
        {
            return None;
        }
        let direct = npages.min(MAX_DIRECT as u64);
        let mut pages = Vec::new();
        for i in 0..usize::try_from(direct).unwrap_or(0) {
            pages.push(p.get_u32(OFF_DIRECT + 4 * i));
        }
        let mut indirect = Vec::new();
        for i in 0..usize::try_from(nindirect).unwrap_or(0) {
            indirect.push(p.get_u32(OFF_INDIRECT + 4 * i));
        }
        Some((nblocks, capacity, count, npages, pages, indirect))
    })?;
    let Some((nblocks, capacity, count, npages, raw_pages, raw_indirect)) = parsed else {
        return Ok(None);
    };
    let mut pages = Vec::with_capacity(usize::try_from(npages).unwrap_or(0));
    for raw in raw_pages {
        let Some(id) = plausible_id(raw) else {
            return Ok(None);
        };
        pages.push(id);
    }
    let mut indirect = Vec::new();
    let mut remaining = npages.saturating_sub(MAX_DIRECT as u64);
    for raw in raw_indirect {
        let Some(id) = plausible_id(raw) else {
            return Ok(None);
        };
        indirect.push(id);
        let take = remaining.min(IDS_PER_INDIRECT as u64);
        let more = pool.with_page(id, |p| {
            if p.get_u32(OFF_MAGIC) != MAGIC_INDIRECT
                || crc32(p.slice(OFF_PAYLOAD, PAGE_SIZE - OFF_PAYLOAD)) != p.get_u32(OFF_PAGE_CRC)
            {
                return None;
            }
            let mut out = Vec::new();
            for i in 0..usize::try_from(take).unwrap_or(0) {
                out.push(p.get_u32(OFF_PAYLOAD + 4 * i));
            }
            Some(out)
        })?;
        let Some(more) = more else {
            return Ok(None);
        };
        for raw in more {
            let Some(id) = plausible_id(raw) else {
                return Ok(None);
            };
            pages.push(id);
        }
        remaining -= take;
    }
    if u64::try_from(pages.len()) != Ok(npages) || remaining != 0 {
        return Ok(None);
    }
    Ok(Some(Layout {
        header,
        nblocks,
        capacity,
        count,
        pages,
        indirect,
    }))
}

/// Loads the whole filter into RAM for probing. `Ok(None)` when the store
/// has no filter or its pages fail validation — lookups then simply probe
/// every gram (correctness never depends on the filter).
// analyze: validates(len|offset|count)
/// Every page the filter occupies (header first, then data pages, then
/// indirect pages), or `None` when no valid filter is installed. Lets the
/// out-of-crate fuzz harness aim on-disk mutations at the filter decoder.
pub(crate) fn page_ids(pool: &BufferPool) -> Result<Option<Vec<PageId>>> {
    Ok(read_layout(pool)?.map(|l| {
        let mut ids = Vec::with_capacity(1 + l.pages.len() + l.indirect.len());
        ids.push(l.header);
        ids.extend(l.pages);
        ids.extend(l.indirect);
        ids
    }))
}

pub(crate) fn load(pool: &BufferPool) -> Result<Option<GramFilter>> {
    let Some(layout) = read_layout(pool)? else {
        return Ok(None);
    };
    let mut filter = GramFilter::empty(layout.nblocks);
    let total_words = filter.words.len();
    for (pi, &page) in layout.pages.iter().enumerate() {
        let start = pi * BLOCKS_PER_PAGE * BLOCK_WORDS;
        let take = total_words.saturating_sub(start).min(BLOCKS_PER_PAGE * BLOCK_WORDS);
        let words = pool.with_page(page, |p| {
            if p.get_u32(OFF_MAGIC) != MAGIC_DATA
                || crc32(p.slice(OFF_PAYLOAD, DATA_PAYLOAD)) != p.get_u32(OFF_PAGE_CRC)
            {
                return None;
            }
            let mut out = Vec::with_capacity(take);
            for i in 0..take {
                out.push(p.get_u64(OFF_PAYLOAD + 8 * i));
            }
            Some(out)
        })?;
        let Some(words) = words else {
            return Ok(None);
        };
        let Some(dst) = filter.words.get_mut(start..start + take) else {
            return Ok(None);
        };
        for (d, s) in dst.iter_mut().zip(&words) {
            *d = *s;
        }
    }
    Ok(Some(filter))
}

/// Creates an empty filter sized for `capacity` grams and points
/// [`SLOT_FILTER`] at it. Any existing filter must be freed first.
pub(crate) fn create(pool: &BufferPool, capacity: u64) -> Result<()> {
    let capacity = capacity.max(DEFAULT_CAPACITY);
    let nblocks = blocks_for_capacity(capacity);
    let npages = usize::try_from(pages_for_blocks(nblocks)).unwrap_or(usize::MAX);
    let mut pages = Vec::with_capacity(npages);
    let zero_crc = crc32(&[0u8; DATA_PAYLOAD]);
    for _ in 0..npages {
        let id = pool.allocate()?;
        pool.with_page_mut(id, |p| {
            p.put_u32(OFF_MAGIC, MAGIC_DATA);
            p.put_u32(OFF_PAGE_CRC, zero_crc);
        })?;
        pages.push(id);
    }
    let mut indirect = Vec::new();
    for chunk in pages
        .get(MAX_DIRECT.min(pages.len())..)
        .unwrap_or(&[])
        .chunks(IDS_PER_INDIRECT)
    {
        let id = pool.allocate()?;
        pool.with_page_mut(id, |p| {
            p.put_u32(OFF_MAGIC, MAGIC_INDIRECT);
            for (i, page) in chunk.iter().enumerate() {
                p.put_u32(OFF_PAYLOAD + 4 * i, page.0);
            }
            let crc = crc32(p.slice(OFF_PAYLOAD, PAGE_SIZE - OFF_PAYLOAD));
            p.put_u32(OFF_PAGE_CRC, crc);
        })?;
        indirect.push(id);
    }
    let header = pool.allocate()?;
    pool.with_page_mut(header, |p| {
        p.put_u32(OFF_MAGIC, MAGIC_HEADER);
        p.put_u32(OFF_VERSION, FILTER_VERSION);
        p.put_u64(OFF_NBLOCKS, nblocks);
        p.put_u64(OFF_CAPACITY, capacity);
        p.put_u64(OFF_COUNT, 0);
        p.put_u32(OFF_NPAGES, u32::try_from(pages.len()).unwrap_or(u32::MAX));
        p.put_u32(OFF_NINDIRECT, u32::try_from(indirect.len()).unwrap_or(u32::MAX));
        for (i, page) in pages.iter().take(MAX_DIRECT).enumerate() {
            p.put_u32(OFF_DIRECT + 4 * i, page.0);
        }
        for (i, page) in indirect.iter().enumerate() {
            p.put_u32(OFF_INDIRECT + 4 * i, page.0);
        }
        let crc = crc32(p.slice(0, OFF_HEADER_CRC));
        p.put_u32(OFF_HEADER_CRC, crc);
    })?;
    pool.set_meta(SLOT_FILTER, u64::from(header.0))
}

/// Frees the filter's pages (when its header is still readable) and clears
/// [`SLOT_FILTER`]. A filter whose header fails validation is only
/// unlinked — leaking its pages is preferable to freeing pages it never
/// owned.
pub(crate) fn free_filter(pool: &BufferPool) -> Result<()> {
    if let Some(layout) = read_layout(pool)? {
        for id in layout.pages.iter().chain(&layout.indirect) {
            pool.free(*id)?;
        }
        pool.free(layout.header)?;
    }
    pool.set_meta(SLOT_FILTER, 0)
}

/// Sets the bits of `grams` (deduplicated, sorted for deterministic page
/// writes) in the persisted filter, growing it by rebuild when the distinct
/// count outruns capacity. Returns `true` if a rebuild replaced the filter
/// (the caller's RAM mirror is then stale and must be reloaded). A store
/// without a filter is a no-op; a filter that fails validation mid-write is
/// dropped entirely rather than left half-updated.
pub(crate) fn insert_grams(pool: &BufferPool, grams: &mut Vec<u64>) -> Result<bool> {
    grams.sort_unstable();
    grams.dedup();
    if grams.is_empty() {
        return Ok(false);
    }
    let Some(layout) = read_layout(pool)? else {
        return Ok(false);
    };
    match write_grams(pool, &layout, grams)? {
        None => {
            // A data page failed validation: drop the filter (advisory —
            // lookups fall back to probing every gram).
            free_filter(pool)?;
            Ok(true)
        }
        Some(fresh) => {
            let count = layout.count + fresh;
            if count > layout.capacity {
                rebuild_from_forward(pool)?;
                return Ok(true);
            }
            if fresh > 0 {
                pool.with_page_mut(layout.header, |p| {
                    p.put_u64(OFF_COUNT, count);
                    let crc = crc32(p.slice(0, OFF_HEADER_CRC));
                    p.put_u32(OFF_HEADER_CRC, crc);
                })?;
            }
            Ok(false)
        }
    }
}

/// Sets the bits of sorted `grams` on the layout's data pages. Returns the
/// number of grams that set at least one new bit, or `None` if a touched
/// page failed validation.
fn write_grams(pool: &BufferPool, layout: &Layout, grams: &[u64]) -> Result<Option<u64>> {
    // Group grams by data page, processed in page order for deterministic
    // journal traffic.
    let mut by_page: Vec<(usize, u64)> = grams
        .iter()
        .map(|&g| (block_of(layout.nblocks, g) / BLOCKS_PER_PAGE, g))
        .collect();
    by_page.sort_unstable();
    let mut fresh = 0u64;
    for chunk in by_page.chunk_by(|a, b| a.0 == b.0) {
        let Some(&(page_idx, _)) = chunk.first() else {
            continue;
        };
        let Some(&page) = layout.pages.get(page_idx) else {
            return Ok(None);
        };
        let ok = pool.with_page_mut(page, |p| {
            if p.get_u32(OFF_MAGIC) != MAGIC_DATA
                || crc32(p.slice(OFF_PAYLOAD, DATA_PAYLOAD)) != p.get_u32(OFF_PAGE_CRC)
            {
                return false;
            }
            for &(_, gram) in chunk {
                let block_in_page = block_of(layout.nblocks, gram) % BLOCKS_PER_PAGE;
                let base = OFF_PAYLOAD + block_in_page * BLOCK_WORDS * 8;
                let mut new_bit = false;
                for (i, &bit) in word_bits(gram).iter().enumerate() {
                    let off = base + 8 * i;
                    let word = p.get_u64(off);
                    new_bit |= word >> bit & 1 == 0;
                    p.put_u64(off, word | 1u64 << bit);
                }
                if new_bit {
                    fresh += 1;
                }
            }
            let crc = crc32(p.slice(OFF_PAYLOAD, DATA_PAYLOAD));
            p.put_u32(OFF_PAGE_CRC, crc);
            true
        })?;
        if !ok {
            return Ok(None);
        }
    }
    Ok(Some(fresh))
}

/// Builds (or rebuilds) the filter from the distinct grams of the forward
/// relation, sized at twice the current distinct-gram count. Runs inside
/// the caller's transaction: on migration, bulk load, and saturation.
pub(crate) fn rebuild_from_forward(pool: &BufferPool) -> Result<()> {
    let fwd = BTree::open(pool, crate::ops::SLOT_FWD)?;
    let mut distinct: FxHashSet<u64> = FxHashSet::default();
    fwd.for_each_range((0, 0), (u64::MAX, u64::MAX), |(_, g), _| {
        distinct.insert(g);
        true
    })?;
    let mut grams: Vec<u64> = distinct.into_iter().collect();
    rebuild_from_grams(pool, &mut grams)
}

/// Builds (or rebuilds) the filter to hold exactly `grams`, sized at twice
/// their count (floored at [`DEFAULT_CAPACITY`]).
pub(crate) fn rebuild_from_grams(pool: &BufferPool, grams: &mut Vec<u64>) -> Result<()> {
    grams.sort_unstable();
    grams.dedup();
    free_filter(pool)?;
    let distinct = u64::try_from(grams.len()).unwrap_or(u64::MAX);
    create(pool, distinct.saturating_mul(2))?;
    let Some(layout) = read_layout(pool)? else {
        // Unreachable in practice: the filter was just created.
        return Ok(());
    };
    let Some(fresh) = write_grams(pool, &layout, grams)? else {
        return free_filter(pool);
    };
    pool.with_page_mut(layout.header, |p| {
        p.put_u64(OFF_COUNT, fresh);
        let crc = crc32(p.slice(0, OFF_HEADER_CRC));
        p.put_u32(OFF_HEADER_CRC, crc);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::Pager;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pqgram-filter-{}", std::process::id()));
        std::fs::create_dir_all(&dir).ok();
        let p = dir.join(name);
        std::fs::remove_file(&p).ok();
        let mut j = p.as_os_str().to_owned();
        j.push("-journal");
        std::fs::remove_file(PathBuf::from(j)).ok();
        p
    }

    fn pool(name: &str) -> Result<BufferPool> {
        let pool = BufferPool::new(Pager::create(&tmp(name))?, 64);
        crate::ops::init_relations(&pool)?;
        Ok(pool)
    }

    fn grams(seed: u64, n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| splitmix64(seed ^ (i << 7))).collect()
    }

    #[test]
    fn ram_and_disk_filters_agree() -> Result<()> {
        let pool = pool("agree.db")?;
        let stored = grams(1, 900);
        let mut ram = {
            create(&pool, 1024)?;
            let layout_nblocks = read_layout(&pool)?.expect("layout").nblocks;
            GramFilter::empty(layout_nblocks)
        };
        insert_grams(&pool, &mut stored.clone())?;
        for &g in &stored {
            ram.insert(g);
        }
        let loaded = load(&pool)?.expect("filter loads");
        assert_eq!(loaded.nblocks, ram.nblocks);
        assert_eq!(loaded.words, ram.words, "disk bits mirror RAM inserts");
        for &g in &stored {
            assert!(loaded.contains(g), "stored gram {g:#x} must be present");
        }
        // The false-positive rate at ~10 bits/gram is around a percent;
        // 1000 absent probes virtually never all pass.
        let absent = grams(2, 1000);
        let fp = absent.iter().filter(|&&g| loaded.contains(g)).count();
        assert!(fp < 100, "false-positive rate out of control: {fp}/1000");
        Ok(())
    }

    #[test]
    fn saturation_rebuild_grows_and_keeps_every_gram() -> Result<()> {
        let pool = pool("saturate.db")?;
        // Store forward rows so the rebuild scan sees the grams.
        let mut all = grams(3, 3000);
        all.sort_unstable();
        all.dedup();
        let rows: Vec<((u64, u64), u32)> = all.iter().map(|&g| ((1, g), 1)).collect();
        BTree::open(&pool, crate::ops::SLOT_FWD)?.bulk_load(rows)?;
        create(&pool, 0)?; // DEFAULT_CAPACITY, far below 3000
        let rebuilt = insert_grams(&pool, &mut all.clone())?;
        assert!(rebuilt, "inserting 3000 grams into a 1024 filter rebuilds");
        let loaded = load(&pool)?.expect("rebuilt filter loads");
        for &g in &all {
            assert!(loaded.contains(g));
        }
        let layout = read_layout(&pool)?.expect("layout");
        assert!(layout.capacity >= 2 * all.len() as u64);
        assert_eq!(layout.count, all.len() as u64);
        Ok(())
    }

    #[test]
    fn corrupt_pages_unload_the_filter_without_error() -> Result<()> {
        let pool = pool("tamper.db")?;
        create(&pool, 1024)?;
        insert_grams(&pool, &mut grams(4, 100))?;
        let layout = read_layout(&pool)?.expect("layout");
        // Flip one payload bit on the first data page, fixing nothing else:
        // the page CRC no longer matches, so the filter must refuse to load.
        pool.with_page_mut(layout.pages[0], |p| {
            let w = p.get_u64(OFF_PAYLOAD);
            p.put_u64(OFF_PAYLOAD, w ^ 1);
        })?;
        assert!(load(&pool)?.is_none(), "corrupt data page must not load");
        // Maintenance on a corrupt filter drops it instead of extending it.
        let rebuilt = insert_grams(&pool, &mut grams(5, 10))?;
        assert!(rebuilt);
        assert_eq!(pool.meta(SLOT_FILTER), 0, "broken filter is dropped");
        Ok(())
    }

    #[test]
    fn multi_page_filters_round_trip() -> Result<()> {
        let pool = pool("multipage.db")?;
        let mut many = grams(6, 20_000);
        create(&pool, many.len() as u64)?;
        insert_grams(&pool, &mut many)?;
        let layout = read_layout(&pool)?.expect("layout");
        assert!(layout.pages.len() > 1, "expected a multi-page filter");
        let loaded = load(&pool)?.expect("loads");
        for &g in &many {
            assert!(loaded.contains(g));
        }
        Ok(())
    }
}
