//! The page file: header, allocation, free list, transactions.
//!
//! Page 0 is the header:
//!
//! ```text
//! 0   magic "PQGSTORE"
//! 8   format version u32
//! 12  page_count u32           (including the header page)
//! 16  freelist head PageId
//! 20  reserved u32
//! 24  user metadata u64 × 8    (slot 0: B+-tree root, slots 1..: caller's)
//! 88  …zeros…
//! 4092 header crc32 over bytes 0..4092
//! ```
//!
//! Writes inside a transaction go straight to the file; atomicity comes from
//! the [`crate::journal`]: the original image of every page touched by the
//! transaction is journaled (and synced) before its first overwrite. Opening
//! a store with a hot journal rolls the incomplete transaction back.
//!
//! All file access is routed through a [`Vfs`] handle. [`Pager::create`] and
//! [`Pager::open`] use the real file system ([`crate::vfs::RealVfs`]);
//! [`Pager::create_with`]/[`Pager::open_with`] accept any implementation —
//! in particular [`crate::vfs::FaultVfs`], which the crash-enumeration suite
//! uses to interrupt a transaction at every single I/O boundary.

use crate::crc::crc32;
use crate::journal::{recover, Journal};
use crate::page::{PageBuf, PageId, PAGE_SIZE, PAGE_SIZE_U64};
use crate::vfs::{RealVfs, Vfs, VfsFile};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const MAGIC: &[u8; 8] = b"PQGSTORE";
const VERSION: u32 = 1;
const OFF_PAGE_COUNT: usize = 12;
const OFF_FREELIST: usize = 16;
const OFF_META: usize = 24;
const OFF_CRC: usize = PAGE_SIZE - 4;

/// Number of `u64` user metadata slots in the header.
///
/// Grew from 8 to 16 for format v3 (the pack fill-page slot). Old headers
/// simply carry zeros in the new slots — the region was always part of the
/// checksummed header page — so the extension is backward compatible.
pub const META_SLOTS: usize = 16;

/// Storage-layer errors.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural corruption detected (bad magic, checksum, page id…).
    Corrupt(String),
    /// API misuse (e.g. nested transactions).
    InvalidArgument(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::Corrupt(m) => write!(f, "store corrupt: {m}"),
            StoreError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, StoreError>;

/// A page file with free-list allocation and journaled transactions.
pub struct Pager {
    vfs: Arc<dyn Vfs>,
    file: Box<dyn VfsFile>,
    path: PathBuf,
    header: PageBuf,
    journal: Option<Journal>,
    /// Page count at `begin()`, for new-page journaling decisions.
    tx_original_pages: u32,
}

impl Pager {
    /// Creates a new store file (fails if it already exists).
    pub fn create(path: &Path) -> Result<Pager> {
        Self::create_with(path, Arc::new(RealVfs))
    }

    /// Opens an existing store, running crash recovery if a hot journal is
    /// found.
    pub fn open(path: &Path) -> Result<Pager> {
        Self::open_with(path, Arc::new(RealVfs))
    }

    /// [`Pager::create`] on an explicit [`Vfs`].
    pub fn create_with(path: &Path, vfs: Arc<dyn Vfs>) -> Result<Pager> {
        let file = vfs.create_new(path)?;
        let mut header = PageBuf::zeroed();
        header.put_slice(0, MAGIC);
        header.put_u32(8, VERSION);
        header.put_u32(OFF_PAGE_COUNT, 1);
        header.put_page_id(OFF_FREELIST, PageId::NONE);
        let mut pager = Pager {
            vfs,
            file,
            path: path.to_owned(),
            header,
            journal: None,
            tx_original_pages: 0,
        };
        pager.flush_header()?;
        pager.file.sync()?;
        Ok(pager)
    }

    /// [`Pager::open`] on an explicit [`Vfs`].
    // analyze: entrypoint(recovery)
    pub fn open_with(path: &Path, vfs: Arc<dyn Vfs>) -> Result<Pager> {
        let mut file = vfs.open(path)?;
        recover(vfs.as_ref(), path, file.as_mut())?;
        let mut raw = vec![0u8; PAGE_SIZE];
        file.read_exact_at(0, &mut raw)?;
        let header = PageBuf::from_bytes(&raw);
        if header.slice(0, 8) != MAGIC {
            return Err(StoreError::Corrupt("bad magic".into()));
        }
        if header.get_u32(8) != VERSION {
            return Err(StoreError::Corrupt("unsupported version".into()));
        }
        if crc32(header.slice(0, OFF_CRC)) != header.get_u32(OFF_CRC) {
            return Err(StoreError::Corrupt("header checksum mismatch".into()));
        }
        let pages = header.get_u32(OFF_PAGE_COUNT);
        let expect_len = u64::from(pages) * PAGE_SIZE_U64;
        if file.size()? < expect_len {
            return Err(StoreError::Corrupt("file shorter than page count".into()));
        }
        Ok(Pager {
            vfs,
            file,
            path: path.to_owned(),
            header,
            journal: None,
            tx_original_pages: 0,
        })
    }

    /// The store file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of pages (including header and free pages).
    pub fn page_count(&self) -> u32 {
        self.header.get_u32(OFF_PAGE_COUNT)
    }

    /// Reads a user metadata slot; out-of-range slots read as zero.
    pub fn meta(&self, slot: usize) -> u64 {
        debug_assert!(slot < META_SLOTS, "meta slot {slot} out of range");
        if slot >= META_SLOTS {
            return 0;
        }
        self.header.get_u64(OFF_META + slot * 8)
    }

    /// Writes a user metadata slot (journaled with the header).
    // analyze: txn-sink
    pub fn set_meta(&mut self, slot: usize, value: u64) -> Result<()> {
        if slot >= META_SLOTS {
            return Err(StoreError::InvalidArgument(format!(
                "meta slot {slot} out of range"
            )));
        }
        self.journal_page(PageId(0))?;
        self.header.put_u64(OFF_META + slot * 8, value);
        self.flush_header()
    }

    /// Reads page `id` from the file.
    pub fn read_page(&mut self, id: PageId) -> Result<PageBuf> {
        self.check_id(id)?;
        if id == PageId(0) {
            return Ok(self.header.clone());
        }
        let mut raw = vec![0u8; PAGE_SIZE];
        self.file.read_exact_at(id.offset(), &mut raw)?;
        Ok(PageBuf::from_bytes(&raw))
    }

    /// Writes page `id`, journaling its original image first when inside a
    /// transaction.
    // analyze: txn-sink
    pub fn write_page(&mut self, id: PageId, page: &PageBuf) -> Result<()> {
        self.check_id(id)?;
        if id == PageId(0) {
            return Err(StoreError::InvalidArgument(
                "header is written via set_meta".into(),
            ));
        }
        self.journal_page(id)?;
        if let Some(j) = &mut self.journal {
            j.sync()?;
        }
        self.file.write_all_at(id.offset(), page.as_bytes())?;
        Ok(())
    }

    /// Allocates a page (reusing the free list when possible).
    // analyze: txn-sink
    pub fn allocate(&mut self) -> Result<PageId> {
        let head = self.header.get_page_id(OFF_FREELIST);
        if head != PageId::NONE {
            let page = self.read_page(head)?;
            let next = page.get_page_id(0);
            self.journal_page(PageId(0))?;
            self.header.put_page_id(OFF_FREELIST, next);
            self.flush_header()?;
            return Ok(head);
        }
        let id = PageId(self.page_count());
        self.journal_page(PageId(0))?;
        self.header.put_u32(OFF_PAGE_COUNT, id.0 + 1);
        self.flush_header()?;
        // Extend the file with a zero page.
        self.file
            .write_all_at(id.offset(), PageBuf::zeroed().as_bytes())?;
        Ok(id)
    }

    /// Returns a page to the free list.
    // analyze: txn-sink
    pub fn free(&mut self, id: PageId) -> Result<()> {
        self.check_id(id)?;
        if id == PageId(0) {
            return Err(StoreError::InvalidArgument("cannot free the header".into()));
        }
        let mut page = PageBuf::zeroed();
        page.put_page_id(0, self.header.get_page_id(OFF_FREELIST));
        self.write_page(id, &page)?;
        self.journal_page(PageId(0))?;
        self.header.put_page_id(OFF_FREELIST, id);
        self.flush_header()
    }

    /// Starts a transaction.
    // analyze: txn-boundary
    pub fn begin(&mut self) -> Result<()> {
        if self.journal.is_some() {
            return Err(StoreError::InvalidArgument(
                "transaction already open".into(),
            ));
        }
        self.tx_original_pages = self.page_count();
        self.journal = Some(Journal::begin(
            Arc::clone(&self.vfs),
            &self.path,
            self.tx_original_pages,
        )?);
        Ok(())
    }

    /// True while a transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.journal.is_some()
    }

    /// Commits: syncs the data file, then retires the journal.
    ///
    /// The data sync happens *before* the journal handle is taken: if the
    /// sync fails, the transaction stays open and [`Pager::rollback`] still
    /// works — a failed commit surfaces as an `Err` and never silently
    /// drops the journal.
    pub fn commit(&mut self) -> Result<()> {
        if self.journal.is_none() {
            return Err(StoreError::InvalidArgument("no open transaction".into()));
        }
        self.file.sync()?;
        if let Some(journal) = self.journal.take() {
            journal.commit()?;
        }
        Ok(())
    }

    /// Rolls the open transaction back to its start state.
    pub fn rollback(&mut self) -> Result<()> {
        let Some(journal) = self.journal.take() else {
            return Err(StoreError::InvalidArgument("no open transaction".into()));
        };
        journal.rollback(self.file.as_mut())?;
        // Reload the (possibly restored) header.
        let mut raw = vec![0u8; PAGE_SIZE];
        self.file.read_exact_at(0, &mut raw)?;
        self.header = PageBuf::from_bytes(&raw);
        Ok(())
    }

    /// Forces everything written so far down to durable storage without
    /// transaction semantics. Bootstrap bulk loads run outside any journal;
    /// they need this barrier before another file is allowed to reference
    /// the one being built.
    pub fn sync_file(&mut self) -> Result<()> {
        self.file.sync()?;
        Ok(())
    }

    /// Structural invariant audit of the page file.
    ///
    /// Checks that the header's page count is covered by the file length and
    /// that the free list is in-bounds, acyclic, and never contains the
    /// header page. Returns the free-list length on success. Cost is
    /// O(free pages); callers run it from tests and debug assertions, not on
    /// the hot path.
    pub fn validate(&mut self) -> Result<u32> {
        let pages = self.page_count();
        let file_len = self.file.size()?;
        let need = u64::from(pages) * PAGE_SIZE_U64;
        if file_len < need {
            return Err(StoreError::Corrupt(format!(
                "file length {file_len} below {pages} pages ({need} bytes)"
            )));
        }
        let mut seen = vec![false; PageId(pages).index()];
        let mut cursor = self.header.get_page_id(OFF_FREELIST);
        let mut free = 0u32;
        while cursor != PageId::NONE {
            if cursor == PageId(0) {
                return Err(StoreError::Corrupt(
                    "free list contains the header page".into(),
                ));
            }
            if cursor.0 >= pages {
                return Err(StoreError::Corrupt(format!(
                    "free list page {cursor:?} out of range ({pages} pages)"
                )));
            }
            if seen.get(cursor.index()).copied().unwrap_or(false) {
                return Err(StoreError::Corrupt(format!(
                    "free list cycle at {cursor:?}"
                )));
            }
            if let Some(slot) = seen.get_mut(cursor.index()) {
                *slot = true;
            }
            free += 1;
            cursor = self.read_page(cursor)?.get_page_id(0);
        }
        Ok(free)
    }

    fn journal_page(&mut self, id: PageId) -> Result<()> {
        let in_tx_scope = self
            .journal
            .as_ref()
            .is_some_and(|j| id.0 < self.tx_original_pages && !j.contains(id));
        if !in_tx_scope {
            return Ok(());
        }
        let original = if id == PageId(0) {
            // The in-memory header may already differ from disk within
            // earlier (committed) operations, but at this point disk and
            // memory agree because every mutation flushes; journal the
            // current image.
            self.header.clone()
        } else {
            let mut raw = vec![0u8; PAGE_SIZE];
            self.file.read_exact_at(id.offset(), &mut raw)?;
            PageBuf::from_bytes(&raw)
        };
        if let Some(journal) = self.journal.as_mut() {
            journal.record(id, &original)?;
        }
        Ok(())
    }

    fn flush_header(&mut self) -> Result<()> {
        if let Some(j) = &mut self.journal {
            j.sync()?;
        }
        let crc = crc32(self.header.slice(0, OFF_CRC));
        self.header.put_u32(OFF_CRC, crc);
        self.file.write_all_at(0, self.header.as_bytes())?;
        Ok(())
    }

    fn check_id(&self, id: PageId) -> Result<()> {
        if id == PageId::NONE || id.0 >= self.page_count() {
            return Err(StoreError::Corrupt(format!(
                "page id {id:?} out of range ({} pages)",
                self.page_count()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::OpenOptions;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pqgram-pager-{}", std::process::id()));
        std::fs::create_dir_all(&dir).ok();
        let p = dir.join(name);
        std::fs::remove_file(&p).ok();
        std::fs::remove_file(Journal::path_for(&p)).ok();
        p
    }

    fn page_with(b: u8) -> PageBuf {
        let mut p = PageBuf::zeroed();
        p.as_bytes_mut().fill(b);
        p
    }

    #[test]
    fn create_open_roundtrip() -> Result<()> {
        let path = tmp("roundtrip.db");
        {
            let mut pager = Pager::create(&path)?;
            let id = pager.allocate()?;
            pager.write_page(id, &page_with(0x42))?;
            pager.set_meta(1, 777)?;
        }
        let mut pager = Pager::open(&path)?;
        assert_eq!(pager.page_count(), 2);
        assert_eq!(pager.meta(1), 777);
        assert_eq!(pager.read_page(PageId(1))?, page_with(0x42));
        Ok(())
    }

    #[test]
    fn create_refuses_existing() -> Result<()> {
        let path = tmp("exists.db");
        Pager::create(&path)?;
        assert!(Pager::create(&path).is_err());
        Ok(())
    }

    #[test]
    fn free_list_reuses_pages() -> Result<()> {
        let path = tmp("freelist.db");
        let mut pager = Pager::create(&path)?;
        let a = pager.allocate()?;
        let b = pager.allocate()?;
        assert_ne!(a, b);
        pager.free(a)?;
        let c = pager.allocate()?;
        assert_eq!(c, a, "freed page must be reused");
        assert_eq!(pager.page_count(), 3);
        pager.free(b)?;
        pager.free(c)?;
        let d = pager.allocate()?;
        let e = pager.allocate()?;
        assert_eq!((d, e), (c, b), "LIFO free list");
        Ok(())
    }

    #[test]
    fn rollback_undoes_everything() -> Result<()> {
        let path = tmp("tx-rollback.db");
        let mut pager = Pager::create(&path)?;
        let id = pager.allocate()?;
        pager.write_page(id, &page_with(1))?;
        pager.set_meta(0, 10)?;

        pager.begin()?;
        pager.write_page(id, &page_with(2))?;
        let extra = pager.allocate()?;
        pager.write_page(extra, &page_with(3))?;
        pager.set_meta(0, 20)?;
        pager.rollback()?;

        assert_eq!(pager.read_page(id)?, page_with(1));
        assert_eq!(pager.meta(0), 10);
        assert_eq!(pager.page_count(), 2);
        // Post-rollback allocation works on the truncated file.
        let again = pager.allocate()?;
        assert_eq!(again, extra);
        Ok(())
    }

    #[test]
    fn commit_persists_across_reopen() -> Result<()> {
        let path = tmp("tx-commit.db");
        {
            let mut pager = Pager::create(&path)?;
            pager.begin()?;
            let id = pager.allocate()?;
            pager.write_page(id, &page_with(9))?;
            pager.set_meta(2, 99)?;
            pager.commit()?;
        }
        let mut pager = Pager::open(&path)?;
        assert_eq!(pager.meta(2), 99);
        assert_eq!(pager.read_page(PageId(1))?, page_with(9));
        Ok(())
    }

    #[test]
    fn crash_mid_transaction_recovers_on_open() -> Result<()> {
        let path = tmp("crash.db");
        {
            let mut pager = Pager::create(&path)?;
            let id = pager.allocate()?;
            pager.write_page(id, &page_with(1))?;
            pager.set_meta(0, 5)?;
            pager.begin()?;
            pager.write_page(id, &page_with(0xbb))?;
            pager.set_meta(0, 6)?;
            let extra = pager.allocate()?;
            pager.write_page(extra, &page_with(0xcc))?;
            // Simulate a crash: leak the journal so no rollback runs.
            std::mem::forget(pager);
        }
        let mut pager = Pager::open(&path)?;
        assert_eq!(pager.meta(0), 5, "metadata rolled back");
        assert_eq!(
            pager.read_page(PageId(1))?,
            page_with(1),
            "page rolled back"
        );
        assert_eq!(pager.page_count(), 2, "appended pages truncated");
        Ok(())
    }

    #[test]
    fn nested_transactions_rejected() -> Result<()> {
        let path = tmp("nested.db");
        let mut pager = Pager::create(&path)?;
        pager.begin()?;
        assert!(matches!(pager.begin(), Err(StoreError::InvalidArgument(_))));
        pager.commit()?;
        assert!(matches!(
            pager.commit(),
            Err(StoreError::InvalidArgument(_))
        ));
        Ok(())
    }

    #[test]
    fn failed_data_sync_keeps_transaction_open() -> Result<()> {
        use crate::vfs::FaultVfs;
        let path = PathBuf::from("/fault/sync.db");
        let vfs = FaultVfs::new();
        let mut pager = Pager::create_with(&path, Arc::new(vfs.clone()))?;
        let id = pager.allocate()?;
        pager.write_page(id, &page_with(1))?;
        pager.begin()?;
        pager.write_page(id, &page_with(2))?;
        // Syncs so far: 0 create, 1 journal; the commit's data sync is #2.
        vfs.fail_sync(2);
        assert!(matches!(pager.commit(), Err(StoreError::Io(_))));
        assert!(pager.in_transaction(), "failed commit keeps the tx open");
        pager.rollback()?;
        assert_eq!(pager.read_page(id)?, page_with(1));
        Ok(())
    }

    #[test]
    fn out_of_range_page_rejected() -> Result<()> {
        let path = tmp("range.db");
        let mut pager = Pager::create(&path)?;
        assert!(matches!(
            pager.read_page(PageId(5)),
            Err(StoreError::Corrupt(_))
        ));
        assert!(matches!(
            pager.read_page(PageId::NONE),
            Err(StoreError::Corrupt(_))
        ));
        Ok(())
    }

    #[test]
    fn corrupt_header_detected() -> Result<()> {
        let path = tmp("corrupt.db");
        Pager::create(&path)?;
        // Flip a byte inside the checksummed region.
        let mut data = std::fs::read(&path)?;
        data[20] ^= 0xff;
        std::fs::write(&path, &data)?;
        assert!(matches!(Pager::open(&path), Err(StoreError::Corrupt(_))));
        Ok(())
    }

    /// Extracts the corruption message or panics with the actual outcome.
    fn corrupt_message<T: std::fmt::Debug>(r: Result<T>) -> String {
        match r {
            Err(StoreError::Corrupt(m)) => m,
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn validate_passes_healthy_file_and_counts_free_pages() -> Result<()> {
        let path = tmp("validate-ok.db");
        let mut pager = Pager::create(&path)?;
        let a = pager.allocate()?;
        let b = pager.allocate()?;
        pager.allocate()?;
        assert_eq!(pager.validate()?, 0);
        pager.free(a)?;
        pager.free(b)?;
        assert_eq!(pager.validate()?, 2);
        Ok(())
    }

    #[test]
    fn validate_reports_free_list_cycle() -> Result<()> {
        let path = tmp("validate-cycle.db");
        let mut pager = Pager::create(&path)?;
        let a = pager.allocate()?;
        let b = pager.allocate()?;
        pager.free(a)?;
        pager.free(b)?; // list: b -> a -> NONE
                        // Point a's next pointer back at b: b -> a -> b.
        let mut page = pager.read_page(a)?;
        page.put_page_id(0, b);
        pager.write_page(a, &page)?;
        let msg = corrupt_message(pager.validate());
        assert!(msg.contains("free list cycle"), "{msg}");
        Ok(())
    }

    #[test]
    fn validate_reports_header_in_free_list() -> Result<()> {
        let path = tmp("validate-header.db");
        let mut pager = Pager::create(&path)?;
        let a = pager.allocate()?;
        pager.free(a)?;
        let mut page = pager.read_page(a)?;
        page.put_page_id(0, PageId(0));
        pager.write_page(a, &page)?;
        let msg = corrupt_message(pager.validate());
        assert!(msg.contains("free list contains the header page"), "{msg}");
        Ok(())
    }

    #[test]
    fn validate_reports_out_of_range_free_page() -> Result<()> {
        let path = tmp("validate-range.db");
        let mut pager = Pager::create(&path)?;
        let a = pager.allocate()?;
        pager.free(a)?;
        let mut page = pager.read_page(a)?;
        page.put_page_id(0, PageId(999));
        pager.write_page(a, &page)?;
        let msg = corrupt_message(pager.validate());
        assert!(msg.contains("out of range"), "{msg}");
        Ok(())
    }

    #[test]
    fn validate_reports_truncated_file() -> Result<()> {
        let path = tmp("validate-trunc.db");
        let mut pager = Pager::create(&path)?;
        pager.allocate()?;
        // Shear the tail off behind the pager's back.
        let f = OpenOptions::new().write(true).open(&path)?;
        f.set_len(PAGE_SIZE_U64 + 7)?;
        drop(f);
        let msg = corrupt_message(pager.validate());
        assert!(msg.contains("below"), "{msg}");
        Ok(())
    }
}
