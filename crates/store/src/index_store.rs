//! The persistent pq-gram forest index.
//!
//! One store file holds the relation `(treeId, pqg, cnt)` of Figure 4 plus
//! two derived relations — the inverted postings `(pqg, treeId, cnt)` and
//! the per-tree bag sizes `(treeId, |I(T)|)` — in three B+-trees of the
//! same file (see [`crate::ops`] for the layout and format versioning),
//! plus the `p, q` parameters in the header. All mutating operations are
//! transactional (rollback journal) and maintain the three relations
//! together: a crash mid-update leaves the previous, mutually consistent
//! state.
//!
//! The two workloads of the paper's evaluation map to:
//!
//! * **approximate lookup** ([`IndexStore::lookup`],
//!   [`IndexStore::lookup_top_k`]) — a planner-driven candidate merge over
//!   the inverted relation: consult the gram filter and the feasible
//!   size window, probe only the query grams that can matter, verify only
//!   the candidates the planner cannot rule out (Section 9.1). Every
//!   threshold runs this one plan — `τ > 1` enumerates the zero-overlap
//!   trees from the totals relation instead of scanning;
//! * **incremental update** ([`IndexStore::apply_delta`],
//!   [`IndexStore::update_from_log`]) — applies `I ← I \ I⁻ ⊎ I⁺` from an
//!   edit log without touching unrelated entries (Sections 8–9.2).

use crate::btree::BTree;
use crate::buffer::{BufferPool, DEFAULT_CAPACITY};
use crate::filter::{self, GramFilter};
use crate::ops::{InvertedEncoding, LookupStats, RelationBytes, SourceProbe, StoreCheck, TotalsView};
use crate::pager::{Pager, StoreError};
use pqgram_core::maintain::{compute_index_delta, IndexDelta, MaintainError, UpdateStats};
use pqgram_core::{GramKey, LookupHit, PQParams, TreeId, TreeIndex};
use pqgram_tree::{EditLog, LabelTable, Tree};
use std::fmt;
use std::path::Path;

const META_ROOT: usize = crate::ops::SLOT_FWD;
pub(crate) const META_P: usize = 1;
pub(crate) const META_Q: usize = 2;
pub(crate) const META_KIND: usize = 7;
pub(crate) const KIND_INDEX_STORE: u64 = 1;

/// Errors of the persistent index layer.
#[derive(Debug)]
pub enum IndexError {
    /// Underlying storage failure.
    Store(StoreError),
    /// Incremental maintenance failure (log/tree/index mismatch).
    Maintain(MaintainError),
    /// A delta removal referenced a gram the stored tree does not have.
    InconsistentDelta(TreeId, GramKey),
    /// Operation on a tree that is not in the store.
    UnknownTree(TreeId),
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::Store(e) => write!(f, "storage error: {e}"),
            IndexError::Maintain(e) => write!(f, "maintenance error: {e}"),
            IndexError::InconsistentDelta(t, g) => {
                write!(f, "delta removes gram {g:#x} absent from {t:?}")
            }
            IndexError::UnknownTree(t) => write!(f, "tree {t:?} is not in the store"),
        }
    }
}

impl std::error::Error for IndexError {}

impl From<StoreError> for IndexError {
    fn from(e: StoreError) -> Self {
        IndexError::Store(e)
    }
}

impl From<MaintainError> for IndexError {
    fn from(e: MaintainError) -> Self {
        IndexError::Maintain(e)
    }
}

type Result<T> = std::result::Result<T, IndexError>;

/// Rejects an index or query built with different `p, q` parameters — a
/// lookup or update against mismatched grams would be silently wrong.
pub(crate) fn check_params(got: PQParams, expected: PQParams) -> Result<()> {
    if got == expected {
        Ok(())
    } else {
        Err(IndexError::Store(StoreError::InvalidArgument(format!(
            "parameter mismatch: got {got:?}, store built with {expected:?}"
        ))))
    }
}

/// A persistent forest index file.
pub struct IndexStore {
    pool: BufferPool,
    params: PQParams,
    /// RAM mirror of the on-disk gram filter: probed on every lookup
    /// without page reads, updated in lockstep with committed writes (the
    /// disk and RAM inserts set the same bits). `None` when the persisted
    /// filter is absent or failed validation — lookups stay correct.
    filter: Option<GramFilter>,
    /// RAM mirror of the totals relation, maintained across commits:
    /// emit-time size-window pruning and totals reads without page I/O.
    totals: TotalsView,
}

impl IndexStore {
    /// Creates a new store file for the given pq-gram parameters.
    pub fn create(path: &Path, params: PQParams) -> Result<IndexStore> {
        Self::create_with(path, params, std::sync::Arc::new(crate::vfs::RealVfs))
    }

    /// [`IndexStore::create`] on an explicit [`crate::vfs::Vfs`] (fault
    /// injection, tests).
    // analyze: txn-exempt(store bootstrap: writes to a file created in this call that no reader has opened; a failed create is fatal and the file is discarded)
    pub fn create_with(
        path: &Path,
        params: PQParams,
        vfs: std::sync::Arc<dyn crate::vfs::Vfs>,
    ) -> Result<IndexStore> {
        let pool = BufferPool::new(Pager::create_with(path, vfs)?, DEFAULT_CAPACITY);
        pool.set_meta(META_P, params.p() as u64)?;
        pool.set_meta(META_Q, params.q() as u64)?;
        pool.set_meta(META_KIND, KIND_INDEX_STORE)?;
        crate::ops::init_relations(&pool)?;
        pool.flush()?;
        let mut store = IndexStore {
            pool,
            params,
            filter: None,
            totals: TotalsView::empty(),
        };
        store.reload_mirrors()?;
        Ok(store)
    }

    /// Opens an existing store (running crash recovery if needed).
    pub fn open(path: &Path) -> Result<IndexStore> {
        Self::open_with(path, std::sync::Arc::new(crate::vfs::RealVfs))
    }

    /// [`IndexStore::open`] on an explicit [`crate::vfs::Vfs`] (fault
    /// injection, tests).
    // analyze: entrypoint(recovery)
    pub fn open_with(path: &Path, vfs: std::sync::Arc<dyn crate::vfs::Vfs>) -> Result<IndexStore> {
        let pool = BufferPool::new(Pager::open_with(path, vfs)?, DEFAULT_CAPACITY);
        if pool.meta(META_KIND) != KIND_INDEX_STORE {
            return Err(IndexError::Store(StoreError::Corrupt(
                "not an index store (kind marker mismatch; document stores open with \
                 DocumentStore)"
                    .into(),
            )));
        }
        let (p, q) = (pool.meta(META_P) as usize, pool.meta(META_Q) as usize);
        let Some(params) = PQParams::try_new(p, q) else {
            return Err(IndexError::Store(StoreError::Corrupt(
                "missing pq parameters in header".into(),
            )));
        };
        crate::ops::ensure_format(&pool)?;
        let mut store = IndexStore {
            pool,
            params,
            filter: None,
            totals: TotalsView::empty(),
        };
        store.reload_mirrors()?;
        Ok(store)
    }

    /// The pq-gram parameters this store was created with.
    pub fn params(&self) -> PQParams {
        self.params
    }

    fn tree(&self) -> Result<BTree<'_>> {
        Ok(BTree::open(&self.pool, META_ROOT)?)
    }

    /// Reloads both RAM mirrors from disk — after bulk loads and whenever
    /// an incremental filter update reports a rebuild.
    fn reload_mirrors(&mut self) -> Result<()> {
        self.filter = filter::load(&self.pool)?;
        self.totals = TotalsView::load(&self.pool)?;
        Ok(())
    }

    /// Refreshes one tree's totals-mirror entry from disk after a commit.
    fn refresh_total(&mut self, id: TreeId) -> Result<()> {
        match crate::ops::stored_total(&self.pool, id)? {
            Some(total) => self.totals.set(id.0, total),
            None => self.totals.remove(id.0),
        }
        Ok(())
    }

    /// Folds committed gram insertions into the RAM filter mirror, or
    /// reloads it when the transaction rebuilt (or dropped) the persisted
    /// filter. The mirror and the disk filter set identical bits, so no
    /// reload is needed on the common in-place path.
    fn refresh_filter(
        &mut self,
        rebuilt: bool,
        grams: impl IntoIterator<Item = GramKey>,
    ) -> Result<()> {
        if rebuilt {
            self.filter = filter::load(&self.pool)?;
        } else if let Some(f) = self.filter.as_mut() {
            for g in grams {
                f.insert(g);
            }
        }
        Ok(())
    }

    /// The acceleration state lookups probe before touching relations.
    pub(crate) fn source_probe(&self) -> SourceProbe<'_> {
        SourceProbe {
            fence: None,
            filter: self.filter.as_ref(),
            totals: Some(&self.totals),
        }
    }

    /// Inserts (or replaces) the index of one tree. Transactional.
    // analyze: entrypoint
    pub fn put_tree(&mut self, id: TreeId, index: &TreeIndex) -> Result<()> {
        check_params(index.params(), self.params)?;
        let mut rebuilt = false;
        self.transactional(|store| {
            crate::ops::delete_tree_entries(&store.pool, id)?;
            rebuilt = crate::ops::put_tree_entries(&store.pool, id, index)?;
            Ok(())
        })?;
        self.refresh_total(id)?;
        self.refresh_filter(rebuilt, index.iter().map(|(g, _)| g))
    }

    /// Inserts (or replaces) a whole batch of trees in **one** transaction —
    /// the single-writer half of the parallel ingest pipeline: callers
    /// profile documents concurrently (`pqgram_core::par`), then hand the
    /// finished batch to this method. One journal capture and one commit
    /// sync amortize over the batch instead of per tree.
    // analyze: entrypoint
    pub fn put_trees(&mut self, batch: &[(TreeId, TreeIndex)]) -> Result<()> {
        for (_, index) in batch {
            check_params(index.params(), self.params)?;
        }
        let mut rebuilt = false;
        self.transactional(|store| {
            for (id, index) in batch {
                crate::ops::delete_tree_entries(&store.pool, *id)?;
                rebuilt |= crate::ops::put_tree_entries(&store.pool, *id, index)?;
            }
            Ok(())
        })?;
        for (id, _) in batch {
            self.refresh_total(*id)?;
        }
        let grams = batch.iter().flat_map(|(_, index)| index.iter().map(|(g, _)| g));
        self.refresh_filter(rebuilt, grams.collect::<Vec<_>>())
    }

    /// Removes a tree from the store. Transactional. Returns `true` if the
    /// tree existed.
    pub fn remove_tree(&mut self, id: TreeId) -> Result<bool> {
        let existed = self.contains_tree(id)?;
        if existed {
            self.transactional(|store| store.delete_tree_entries(id))?;
            // The gram filter stays a superset — deletes never shrink it.
            self.totals.remove(id.0);
        }
        Ok(existed)
    }

    fn delete_tree_entries(&self, id: TreeId) -> Result<()> {
        Ok(crate::ops::delete_tree_entries(&self.pool, id)?)
    }

    /// True if any gram of `id` is stored (one totals-relation lookup).
    pub fn contains_tree(&self, id: TreeId) -> Result<bool> {
        Ok(crate::ops::contains_tree(&self.pool, id)?)
    }

    /// Materializes the in-memory index of one stored tree.
    pub fn tree_index(&self, id: TreeId) -> Result<Option<TreeIndex>> {
        Ok(crate::ops::tree_index(&self.pool, self.params, id)?)
    }

    /// All stored tree ids, ascending (one scan of the totals relation,
    /// one row per tree).
    pub fn tree_ids(&self) -> Result<Vec<TreeId>> {
        Ok(crate::ops::tree_ids(&self.pool)?)
    }

    /// Applies an incremental update delta (`I ← I \ I⁻ ⊎ I⁺`) to one tree.
    /// Transactional: on any inconsistency the store is left unchanged.
    pub fn apply_delta(&mut self, id: TreeId, delta: &IndexDelta) -> Result<()> {
        let mut rebuilt = false;
        self.transactional(|store| {
            let (failed, filter_rebuilt) = crate::ops::apply_delta_rows(&store.pool, id, delta)?;
            rebuilt = filter_rebuilt;
            match failed {
                None => Ok(()),
                Some(gram) => Err(IndexError::InconsistentDelta(id, gram)),
            }
        })?;
        self.refresh_total(id)?;
        self.refresh_filter(rebuilt, delta.additions.iter().copied())
    }

    /// The full pipeline of the paper: given the stored old index of `id`,
    /// the resulting tree and the log of inverse operations, computes
    /// `I⁺`/`I⁻` (Algorithm 1) and applies them in one transaction.
    pub fn update_from_log(
        &mut self,
        id: TreeId,
        tree: &Tree,
        labels: &LabelTable,
        log: &EditLog,
    ) -> Result<UpdateStats> {
        if !self.contains_tree(id)? {
            return Err(IndexError::UnknownTree(id));
        }
        let (delta, mut stats) = compute_index_delta(tree, labels, log, self.params)?;
        let t = std::time::Instant::now();
        self.apply_delta(id, &delta)?;
        stats.apply = t.elapsed();
        Ok(stats)
    }

    /// The approximate lookup of Section 3.2 over the stored forest: all
    /// trees with `dist(query, T) < tau`, ascending by distance. Every
    /// threshold runs the planner-driven candidate merge over the inverted
    /// relation; `τ > 1` additionally enumerates the zero-overlap trees
    /// (distance exactly 1) from the totals relation.
    pub fn lookup(&self, query: &TreeIndex, tau: f64) -> Result<Vec<LookupHit>> {
        Ok(self.lookup_with_stats(query, tau)?.0)
    }

    /// The `k` stored trees nearest to `query` by pq-gram distance,
    /// ascending by `(distance, id)` — exactly the first `k` entries of
    /// the distance-sorted exhaustive answer. The merge's pruning bound
    /// starts at distance 1 and tightens to the heap's worst kept distance
    /// as it fills.
    pub fn lookup_top_k(&self, query: &TreeIndex, k: usize) -> Result<Vec<LookupHit>> {
        Ok(self.lookup_top_k_with_stats(query, k)?.0)
    }

    /// [`IndexStore::lookup_top_k`] also returning the access-path
    /// counters of the executed plan.
    // analyze: entrypoint
    pub fn lookup_top_k_with_stats(
        &self,
        query: &TreeIndex,
        k: usize,
    ) -> Result<(Vec<LookupHit>, LookupStats)> {
        check_params(query.params(), self.params)?;
        let probe = self.source_probe();
        Ok(crate::ops::lookup_top_k_with_stats(
            &self.pool, &probe, query, k,
        )?)
    }

    /// [`IndexStore::lookup`] also returning the access-path counters of
    /// the executed plan.
    // analyze: entrypoint
    pub fn lookup_with_stats(
        &self,
        query: &TreeIndex,
        tau: f64,
    ) -> Result<(Vec<LookupHit>, LookupStats)> {
        self.lookup_with_stats_threads(query, tau, 1)
    }

    /// [`IndexStore::lookup_with_stats`] with the exact-distance
    /// verification phase fanned out over `threads` workers (deterministic:
    /// the result is identical to the serial plan for any thread count).
    // analyze: entrypoint
    pub fn lookup_with_stats_threads(
        &self,
        query: &TreeIndex,
        tau: f64,
        threads: usize,
    ) -> Result<(Vec<LookupHit>, LookupStats)> {
        check_params(query.params(), self.params)?;
        let probe = self.source_probe();
        Ok(crate::ops::lookup_with_stats(
            &self.pool, &probe, query, tau, threads,
        )?)
    }

    /// The candidate merge with every advisory pruning stage disabled —
    /// the plan exactly as it ran before the lookup planner existed.
    /// Benchmark-ablation plumbing, not API: results are identical to
    /// [`IndexStore::lookup_with_stats_threads`], only the work counters
    /// differ.
    #[doc(hidden)]
    pub fn lookup_unpruned_with_stats(
        &self,
        query: &TreeIndex,
        tau: f64,
        threads: usize,
    ) -> Result<(Vec<LookupHit>, LookupStats)> {
        check_params(query.params(), self.params)?;
        Ok(crate::ops::lookup_unpruned_with_stats(
            &self.pool, query, tau, threads,
        )?)
    }

    /// The version-1 lookup plan — one ordered scan of the forward relation
    /// verifying every stored tree — regardless of `tau`. Kept as the
    /// reference side for benchmarks and equivalence tests.
    pub fn lookup_exhaustive_with_stats(
        &self,
        query: &TreeIndex,
        tau: f64,
    ) -> Result<(Vec<LookupHit>, LookupStats)> {
        check_params(query.params(), self.params)?;
        Ok(crate::ops::lookup_scan_with_stats(&self.pool, query, tau)?)
    }

    /// Number of distinct `(tree, gram)` rows (size of the relation).
    pub fn row_count(&self) -> Result<u64> {
        Ok(self.tree()?.len()?)
    }

    /// Whether the persisted gram filter decoded and validated at open.
    /// Crash tests assert recovery always lands on a *loadable* filter —
    /// every committed state has one — not merely on correct answers.
    #[doc(hidden)]
    pub fn has_gram_filter(&self) -> bool {
        self.filter.is_some()
    }

    /// Verifies the on-disk B+-tree invariants of all three relations plus
    /// their cross-relation consistency (see
    /// [`crate::ops::verify_relations`]).
    pub fn verify(&self) -> Result<StoreCheck> {
        Ok(crate::ops::verify_relations(&self.pool)?)
    }

    /// Flushes caches to disk (no-op for data already committed).
    pub fn flush(&self) -> Result<()> {
        Ok(self.pool.flush()?)
    }

    /// Creates a store and bulk-loads a whole forest in one pass (sorted
    /// bottom-up B+-tree build) — much faster than per-tree [`Self::put_tree`]
    /// for initial indexing.
    // analyze: txn-exempt(bulk bootstrap: loads into a store file created by this call that no reader has opened yet)
    pub fn bulk_create<'a, I>(path: &Path, params: PQParams, forest: I) -> Result<IndexStore>
    where
        I: IntoIterator<Item = (TreeId, &'a TreeIndex)>,
    {
        Self::bulk_create_with(
            path,
            params,
            forest,
            std::sync::Arc::new(crate::vfs::RealVfs),
        )
    }

    /// [`IndexStore::bulk_create`] on an explicit vfs (crash-enumeration
    /// tests bulk-build block-bearing stores through a fault-injecting vfs).
    // analyze: txn-exempt(bulk bootstrap: loads into a store file created by this call that no reader can have opened yet)
    pub fn bulk_create_with<'a, I>(
        path: &Path,
        params: PQParams,
        forest: I,
        vfs: std::sync::Arc<dyn crate::vfs::Vfs>,
    ) -> Result<IndexStore>
    where
        I: IntoIterator<Item = (TreeId, &'a TreeIndex)>,
    {
        Self::bulk_create_with_encoding(path, params, forest, vfs, InvertedEncoding::PostingBlocks)
    }

    /// [`IndexStore::bulk_create_with`] with an explicit inverted-relation
    /// encoding: [`InvertedEncoding::RowPerPosting`] reproduces the
    /// row-per-posting footprint of format v2 (the benchmark ablation).
    // analyze: txn-exempt(bulk bootstrap: loads into a store file created by this call that no reader can have opened yet)
    pub fn bulk_create_with_encoding<'a, I>(
        path: &Path,
        params: PQParams,
        forest: I,
        vfs: std::sync::Arc<dyn crate::vfs::Vfs>,
        encoding: InvertedEncoding,
    ) -> Result<IndexStore>
    where
        I: IntoIterator<Item = (TreeId, &'a TreeIndex)>,
    {
        let mut rows: Vec<((u64, u64), u32)> = Vec::new();
        for (id, index) in forest {
            check_params(index.params(), params)?;
            for (gram, count) in index.iter() {
                rows.push(((id.0, gram), count));
            }
        }
        rows.sort_unstable_by_key(|&(k, _)| k);
        let mut store = IndexStore::create_with(path, params, vfs)?;
        let compress = encoding == InvertedEncoding::PostingBlocks;
        crate::ops::bulk_load_relations(&store.pool, &rows, compress)?;
        // Full durability barrier: the bulk-built state is the baseline
        // every later transaction's rollback falls back to, so it must
        // survive any crash that happens after this constructor returns.
        store.pool.sync()?;
        store.reload_mirrors()?;
        Ok(store)
    }

    /// On-disk footprint of the three relations, in bytes.
    pub fn relation_bytes(&self) -> Result<RelationBytes> {
        Ok(crate::ops::relation_bytes(&self.pool)?)
    }

    /// Rewrites the store into a fresh compact file at `target` (bulk-built
    /// B+-trees, no free pages, ~90% leaf fill) and returns the new store.
    // analyze: txn-exempt(writes only to the fresh target file created by this call; the source store is read-only here)
    pub fn compact_to(&self, target: &Path) -> Result<IndexStore> {
        let mut compacted = IndexStore::create(target, self.params)?;
        let src = self.tree()?;
        let mut rows: Vec<((u64, u64), u32)> = Vec::new();
        src.for_each_range((0, 0), (u64::MAX, u64::MAX), |k, v| {
            rows.push((k, v));
            true
        })?;
        crate::ops::bulk_load_relations(&compacted.pool, &rows, true)?;
        compacted.pool.flush()?;
        compacted.reload_mirrors()?;
        Ok(compacted)
    }

    /// Read-only access to the underlying pool for sibling modules: the
    /// segmented engine runs its masked lookup plans and compaction scans
    /// against the main file's relations directly.
    pub(crate) fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// [`IndexStore::bulk_create`] on an explicit vfs from pre-sorted rows,
    /// ending in a full durability barrier — the segmented engine builds
    /// main-file generations with this before the manifest references them.
    // analyze: txn-exempt(bulk bootstrap: loads into a store file created by this call that no reader has opened yet)
    pub(crate) fn bulk_create_rows_with(
        path: &Path,
        params: PQParams,
        vfs: std::sync::Arc<dyn crate::vfs::Vfs>,
        rows: &[((u64, u64), u32)],
    ) -> Result<IndexStore> {
        let mut store = IndexStore::create_with(path, params, vfs)?;
        crate::ops::bulk_load_relations(&store.pool, rows, true)?;
        store.pool.sync()?;
        store.reload_mirrors()?;
        Ok(store)
    }

    /// Consumes the store into a shareable read-only handle for concurrent
    /// lookups. Taking `self` by value enforces the engine's single-writer
    /// XOR many-readers discipline in the type system: while reader clones
    /// exist there is no `&mut IndexStore` anywhere, so no write can race a
    /// lookup. Reclaim write access with
    /// [`IndexStoreReader::try_into_store`] once all clones are dropped.
    pub fn into_reader(self) -> IndexStoreReader {
        IndexStoreReader {
            inner: std::sync::Arc::new(self),
        }
    }

    // analyze: txn-boundary
    fn transactional(&mut self, f: impl FnOnce(&Self) -> Result<()>) -> Result<()> {
        self.pool.begin()?;
        match f(self) {
            Ok(()) => {
                self.pool.commit()?;
                // Debug builds audit the full storage invariants after
                // every committed mutation; release builds pay nothing.
                #[cfg(debug_assertions)]
                {
                    crate::ops::verify_relations(&self.pool)?;
                    self.pool.validate_pager()?;
                }
                Ok(())
            }
            Err(e) => {
                self.pool.rollback()?;
                Err(e)
            }
        }
    }
}

/// A cloneable, `Send + Sync` read-only view of an [`IndexStore`], built
/// with [`IndexStore::into_reader`]. Clones share one buffer pool, whose
/// sharded read path lets lookups proceed concurrently; every method here
/// takes `&self` and only reads, so any number of threads may hold clones.
#[derive(Clone)]
pub struct IndexStoreReader {
    inner: std::sync::Arc<IndexStore>,
}

// The whole point of the reader is to cross threads; if a future change
// smuggles a non-Send/Sync member into the store, fail the build here
// rather than at every call site.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<IndexStoreReader>();
};

impl IndexStoreReader {
    /// The pq-gram parameters the underlying store was created with.
    pub fn params(&self) -> PQParams {
        self.inner.params()
    }

    /// The approximate lookup ([`IndexStore::lookup`]); safe to call from
    /// any number of threads at once.
    pub fn lookup(&self, query: &TreeIndex, tau: f64) -> Result<Vec<LookupHit>> {
        self.inner.lookup(query, tau)
    }

    /// [`IndexStore::lookup_with_stats`] through the shared handle.
    pub fn lookup_with_stats(
        &self,
        query: &TreeIndex,
        tau: f64,
    ) -> Result<(Vec<LookupHit>, LookupStats)> {
        self.inner.lookup_with_stats(query, tau)
    }

    /// [`IndexStore::lookup_with_stats_threads`] through the shared handle.
    pub fn lookup_with_stats_threads(
        &self,
        query: &TreeIndex,
        tau: f64,
        threads: usize,
    ) -> Result<(Vec<LookupHit>, LookupStats)> {
        self.inner.lookup_with_stats_threads(query, tau, threads)
    }

    /// [`IndexStore::lookup_top_k`] through the shared handle.
    pub fn lookup_top_k(&self, query: &TreeIndex, k: usize) -> Result<Vec<LookupHit>> {
        self.inner.lookup_top_k(query, k)
    }

    /// [`IndexStore::lookup_top_k_with_stats`] through the shared handle.
    pub fn lookup_top_k_with_stats(
        &self,
        query: &TreeIndex,
        k: usize,
    ) -> Result<(Vec<LookupHit>, LookupStats)> {
        self.inner.lookup_top_k_with_stats(query, k)
    }

    /// True if any gram of `id` is stored.
    pub fn contains_tree(&self, id: TreeId) -> Result<bool> {
        self.inner.contains_tree(id)
    }

    /// Materializes the in-memory index of one stored tree.
    pub fn tree_index(&self, id: TreeId) -> Result<Option<TreeIndex>> {
        self.inner.tree_index(id)
    }

    /// All stored tree ids, ascending.
    pub fn tree_ids(&self) -> Result<Vec<TreeId>> {
        self.inner.tree_ids()
    }

    /// Verifies the on-disk invariants (read-only audit).
    pub fn verify(&self) -> Result<StoreCheck> {
        self.inner.verify()
    }

    /// Reclaims exclusive (write) access. Fails with `self` unchanged if
    /// other reader clones are still alive.
    pub fn try_into_store(self) -> std::result::Result<IndexStore, IndexStoreReader> {
        std::sync::Arc::try_unwrap(self.inner).map_err(|inner| IndexStoreReader { inner })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqgram_core::{build_index, pq_distance};
    use pqgram_tree::generate::{random_tree, RandomTreeConfig};
    use pqgram_tree::{record_script, ScriptConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::path::PathBuf;

    type TestResult = std::result::Result<(), Box<dyn std::error::Error>>;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pqgram-istore-{}", std::process::id()));
        std::fs::create_dir_all(&dir).ok();
        let p = dir.join(name);
        std::fs::remove_file(&p).ok();
        let mut j = p.as_os_str().to_owned();
        j.push("-journal");
        std::fs::remove_file(PathBuf::from(j)).ok();
        p
    }

    fn setup(seed: u64, n: usize) -> (Tree, LabelTable) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut lt = LabelTable::new();
        let t = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(n, 6));
        (t, lt)
    }

    #[test]
    fn put_get_roundtrip() -> TestResult {
        let params = PQParams::default();
        let (t, lt) = setup(1, 300);
        let idx = build_index(&t, &lt, params);
        let mut store = IndexStore::create(&tmp("roundtrip.pqg"), params)?;
        store.put_tree(TreeId(7), &idx)?;
        let back = store.tree_index(TreeId(7))?.ok_or("tree 7 missing")?;
        assert_eq!(back, idx);
        assert!(store.tree_index(TreeId(8))?.is_none());
        assert_eq!(store.tree_ids()?, vec![TreeId(7)]);
        Ok(())
    }

    #[test]
    fn reopen_preserves_params_and_data() -> TestResult {
        let params = PQParams::new(2, 4);
        let path = tmp("reopen.pqg");
        let (t, lt) = setup(2, 200);
        let idx = build_index(&t, &lt, params);
        {
            let mut store = IndexStore::create(&path, params)?;
            store.put_tree(TreeId(1), &idx)?;
        }
        let store = IndexStore::open(&path)?;
        assert_eq!(store.params(), params);
        assert_eq!(store.tree_index(TreeId(1))?.ok_or("tree 1 missing")?, idx);
        Ok(())
    }

    #[test]
    fn put_replaces_previous_index() -> TestResult {
        let params = PQParams::default();
        let (t1, lt) = setup(3, 150);
        let (t2, lt2) = setup(4, 150);
        let mut store = IndexStore::create(&tmp("replace.pqg"), params)?;
        store.put_tree(TreeId(1), &build_index(&t1, &lt, params))?;
        let idx2 = build_index(&t2, &lt2, params);
        store.put_tree(TreeId(1), &idx2)?;
        assert_eq!(store.tree_index(TreeId(1))?.ok_or("tree 1 missing")?, idx2);
        Ok(())
    }

    #[test]
    fn remove_tree_works() -> TestResult {
        let params = PQParams::default();
        let (t, lt) = setup(5, 100);
        let mut store = IndexStore::create(&tmp("remove.pqg"), params)?;
        store.put_tree(TreeId(3), &build_index(&t, &lt, params))?;
        assert!(store.remove_tree(TreeId(3))?);
        assert!(!store.remove_tree(TreeId(3))?);
        assert!(store.tree_index(TreeId(3))?.is_none());
        assert_eq!(store.row_count()?, 0);
        Ok(())
    }

    #[test]
    fn lookup_matches_in_memory_distance() -> TestResult {
        let params = PQParams::default();
        let mut store = IndexStore::create(&tmp("lookup.pqg"), params)?;
        let mut indexes = Vec::new();
        for i in 0..20u64 {
            let (t, lt) = setup(100 + i, 120);
            let idx = build_index(&t, &lt, params);
            store.put_tree(TreeId(i), &idx)?;
            indexes.push(idx);
        }
        let (q, qlt) = setup(100, 120); // same seed as tree 0: identical
        let query = build_index(&q, &qlt, params);
        let hits = store.lookup(&query, 1.01)?;
        assert_eq!(hits.len(), 20);
        assert_eq!(hits[0].tree_id, TreeId(0));
        assert_eq!(hits[0].distance, 0.0);
        for hit in &hits {
            let expected = pq_distance(&query, &indexes[hit.tree_id.0 as usize])?;
            assert!((hit.distance - expected).abs() < 1e-12);
        }
        // Threshold filters.
        let close = store.lookup(&query, 0.5)?;
        assert!(close.len() < 20);
        assert!(close.iter().any(|h| h.tree_id == TreeId(0)));
        Ok(())
    }

    #[test]
    fn incremental_update_from_log_matches_rebuild() -> TestResult {
        let params = PQParams::default();
        let mut rng = StdRng::seed_from_u64(9);
        let mut lt = LabelTable::new();
        let mut tree = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(400, 6));
        let mut store = IndexStore::create(&tmp("incr.pqg"), params)?;
        store.put_tree(TreeId(0), &build_index(&tree, &lt, params))?;

        let alphabet: Vec<_> = lt.iter().map(|(s, _)| s).collect();
        let (log, _) = record_script(&mut rng, &mut tree, &ScriptConfig::new(60, alphabet));
        let stats = store.update_from_log(TreeId(0), &tree, &lt, &log)?;
        assert_eq!(stats.ops, 60);
        let stored = store.tree_index(TreeId(0))?.ok_or("tree 0 missing")?;
        assert_eq!(stored, build_index(&tree, &lt, params));
        Ok(())
    }

    #[test]
    fn update_unknown_tree_fails() -> TestResult {
        let params = PQParams::default();
        let (t, lt) = setup(6, 50);
        let mut store = IndexStore::create(&tmp("unknown.pqg"), params)?;
        let err = store
            .update_from_log(TreeId(9), &t, &lt, &EditLog::new())
            .unwrap_err();
        assert!(matches!(err, IndexError::UnknownTree(TreeId(9))));
        Ok(())
    }

    #[test]
    fn inconsistent_delta_rolls_back() -> TestResult {
        let params = PQParams::default();
        let (t, lt) = setup(7, 100);
        let idx = build_index(&t, &lt, params);
        let mut store = IndexStore::create(&tmp("badelta.pqg"), params)?;
        store.put_tree(TreeId(0), &idx)?;
        // A delta that first adds (visible inside the tx) then removes an
        // absent gram: the whole transaction must roll back.
        let delta = IndexDelta {
            additions: vec![0xdead_beef],
            removals: vec![0x1234_5678_9abc], // never in the index
        };
        // removals are applied first in apply_delta, so reorder to make the
        // addition land before the failure:
        let delta = IndexDelta {
            additions: delta.additions,
            removals: delta.removals,
        };
        let err = store.apply_delta(TreeId(0), &delta).unwrap_err();
        assert!(matches!(err, IndexError::InconsistentDelta(..)));
        assert_eq!(
            store.tree_index(TreeId(0))?.ok_or("tree 0 missing")?,
            idx,
            "rolled back"
        );
        Ok(())
    }

    #[test]
    fn many_trees_skip_scan() -> TestResult {
        let params = PQParams::new(2, 2);
        let mut store = IndexStore::create(&tmp("ids.pqg"), params)?;
        for i in [5u64, 17, 0, 99, 3] {
            let (t, lt) = setup(i, 30);
            store.put_tree(TreeId(i), &build_index(&t, &lt, params))?;
        }
        assert_eq!(
            store.tree_ids()?,
            vec![TreeId(0), TreeId(3), TreeId(5), TreeId(17), TreeId(99)]
        );
        Ok(())
    }

    #[test]
    fn inverted_plan_matches_exhaustive_scan() -> TestResult {
        let params = PQParams::default();
        let mut store = IndexStore::create(&tmp("plans.pqg"), params)?;
        for i in 0..30u64 {
            let (t, lt) = setup(500 + i, 80);
            store.put_tree(TreeId(i), &build_index(&t, &lt, params))?;
        }
        let (q, qlt) = setup(515, 80);
        let query = build_index(&q, &qlt, params);
        for tau in [0.2, 0.6, 1.0, 1.5, 2.0] {
            let (inv_hits, inv_stats) = store.lookup_with_stats(&query, tau)?;
            let (scan_hits, scan_stats) = store.lookup_exhaustive_with_stats(&query, tau)?;
            assert!(inv_stats.used_inverted, "tau={tau}");
            assert_eq!(inv_stats.plan, crate::ops::LookupPlan::CandidateMerge);
            assert!(!scan_stats.used_inverted);
            assert_eq!(inv_hits, scan_hits, "tau={tau}");
            assert_eq!(scan_stats.rows_read, store.row_count()?);
            // The merge plan never reads more rows than the full scan did.
            assert!(inv_stats.rows_read < scan_stats.rows_read, "tau={tau}");
        }
        // τ > 1: every stored tree is a hit, through the same plan — the
        // zero-overlap trees are enumerated from the totals relation (one
        // row each), not by scanning the forward relation.
        let (all_hits, stats) = store.lookup_with_stats(&query, 1.5)?;
        assert!(stats.used_inverted);
        assert_eq!(all_hits.len(), 30);
        // The unpruned ablation returns identical results at any tau.
        for tau in [0.2, 0.6, 1.0, 1.5] {
            let (pruned, pstats) = store.lookup_with_stats(&query, tau)?;
            let (unpruned, ustats) = store.lookup_unpruned_with_stats(&query, tau, 1)?;
            assert_eq!(pruned, unpruned, "tau={tau}");
            assert!(pstats.rows_read <= ustats.rows_read, "tau={tau}");
            assert!(pstats.verified <= ustats.verified, "tau={tau}");
        }
        Ok(())
    }

    #[test]
    fn top_k_equals_sorted_exhaustive_prefix() -> TestResult {
        let params = PQParams::default();
        let mut store = IndexStore::create(&tmp("topk.pqg"), params)?;
        for i in 0..25u64 {
            let size = 60 + usize::try_from(i % 7).unwrap_or(0) * 10;
            let (t, lt) = setup(700 + i % 5, size);
            store.put_tree(TreeId(i), &build_index(&t, &lt, params))?;
        }
        let (q, qlt) = setup(702, 80);
        let query = build_index(&q, &qlt, params);
        // Oracle: exhaustive scan at tau > 1 admits every tree (zero-overlap
        // trees sit at distance exactly 1 < 1.5), already distance-sorted
        // with ascending-id tie-breaks.
        let (oracle, _) = store.lookup_exhaustive_with_stats(&query, 1.5)?;
        assert_eq!(oracle.len(), 25);
        for k in [0usize, 1, 3, 10, 25, 40] {
            let (hits, stats) = store.lookup_top_k_with_stats(&query, k)?;
            assert_eq!(hits, oracle[..k.min(oracle.len())], "k={k}");
            assert_eq!(stats.hits, k.min(oracle.len()));
            assert!(stats.used_inverted);
        }
        Ok(())
    }

    #[test]
    fn opening_a_version1_file_migrates_in_place() -> TestResult {
        // Build a version-1 file by hand: forward relation only, version
        // slot unset — exactly what a pre-dual-relation build wrote.
        let params = PQParams::new(2, 3);
        let path = tmp("legacy.pqg");
        let (t1, lt1) = setup(11, 200);
        let (t2, lt2) = setup(12, 150);
        let idx1 = build_index(&t1, &lt1, params);
        let idx2 = build_index(&t2, &lt2, params);
        {
            let pool = BufferPool::new(
                Pager::create_with(&path, std::sync::Arc::new(crate::vfs::RealVfs))?,
                DEFAULT_CAPACITY,
            );
            pool.set_meta(META_P, 2)?;
            pool.set_meta(META_Q, 3)?;
            pool.set_meta(META_KIND, KIND_INDEX_STORE)?;
            let fwd = BTree::open(&pool, crate::ops::SLOT_FWD)?;
            let mut rows: Vec<((u64, u64), u32)> = Vec::new();
            for (g, c) in idx1.iter() {
                rows.push(((1, g), c));
            }
            for (g, c) in idx2.iter() {
                rows.push(((2, g), c));
            }
            rows.sort_unstable_by_key(|&(k, _)| k);
            fwd.bulk_load(rows)?;
            pool.flush()?;
        }
        let store = IndexStore::open(&path)?;
        let check = store.verify()?;
        assert_eq!(check.trees, 2);
        // Multi-gram blocks collapse many postings per directory row; the
        // verifier already proved the expanded rows match the forward
        // relation, so here it suffices that blocks exist.
        assert!(check.blocks > 0, "migration must produce posting blocks");
        assert!(check.inverted.entries < check.forward.entries);
        assert_eq!(store.tree_index(TreeId(1))?.ok_or("tree 1 missing")?, idx1);
        assert_eq!(store.tree_index(TreeId(2))?.ok_or("tree 2 missing")?, idx2);
        assert_eq!(store.tree_ids()?, vec![TreeId(1), TreeId(2)]);
        let query = idx1.clone();
        let (hits, stats) = store.lookup_with_stats(&query, 0.5)?;
        assert!(stats.used_inverted);
        assert_eq!(hits[0].tree_id, TreeId(1));
        assert_eq!(hits[0].distance, 0.0);
        drop(store);
        // The migration was committed: a second open must not migrate again
        // and must see the same consistent state.
        let again = IndexStore::open(&path)?;
        assert_eq!(again.verify()?.trees, 2);
        Ok(())
    }

    /// Builds a format-v2 file by hand through `vfs`: forward relation,
    /// **row-per-posting** inverted relation, totals, and version slot 2 —
    /// exactly what a pre-posting-block build wrote. Returns the indexes
    /// keyed by tree id so callers can check migrated contents.
    fn write_version2_file(
        path: &std::path::Path,
        vfs: std::sync::Arc<dyn crate::vfs::Vfs>,
        params: PQParams,
        forest: &[(u64, TreeIndex)],
    ) -> TestResult {
        let pool = BufferPool::new(Pager::create_with(path, vfs)?, DEFAULT_CAPACITY);
        pool.set_meta(META_P, params.p() as u64)?;
        pool.set_meta(META_Q, params.q() as u64)?;
        pool.set_meta(META_KIND, KIND_INDEX_STORE)?;
        let mut fwd: Vec<((u64, u64), u32)> = Vec::new();
        let mut inv: Vec<((u64, u64), u32)> = Vec::new();
        let mut tot: Vec<((u64, u64), u32)> = Vec::new();
        for (t, idx) in forest {
            for (g, c) in idx.iter() {
                fwd.push(((*t, g), c));
                inv.push(((g, *t), c));
            }
            tot.push(((*t, 0), u32::try_from(idx.total())?));
        }
        fwd.sort_unstable_by_key(|&(k, _)| k);
        inv.sort_unstable_by_key(|&(k, _)| k);
        BTree::open(&pool, crate::ops::SLOT_FWD)?.bulk_load(fwd)?;
        BTree::open(&pool, crate::ops::SLOT_INV)?.bulk_load(inv)?;
        BTree::open(&pool, crate::ops::SLOT_TOT)?.bulk_load(tot)?;
        pool.set_meta(crate::ops::SLOT_VERSION, crate::ops::FORMAT_VERSION_V2)?;
        pool.sync()?;
        Ok(())
    }

    /// Six identical trees give every gram six postings — over the block
    /// threshold, so the migrated inverted relation must contain blocks.
    fn version2_forest(params: PQParams) -> Vec<(u64, TreeIndex)> {
        let (t, lt) = setup(77, 180);
        let idx = build_index(&t, &lt, params);
        (1..=6u64).map(|i| (i, idx.clone())).collect()
    }

    #[test]
    fn opening_a_version2_file_migrates_to_posting_blocks() -> TestResult {
        let params = PQParams::new(2, 3);
        let path = tmp("legacy-v2.pqg");
        let forest = version2_forest(params);
        write_version2_file(
            &path,
            std::sync::Arc::new(crate::vfs::RealVfs),
            params,
            &forest,
        )?;
        let store = IndexStore::open(&path)?;
        let check = store.verify()?;
        assert_eq!(check.trees, 6);
        assert!(
            check.blocks > 0,
            "migration must re-encode shared grams as posting blocks"
        );
        for (t, idx) in &forest {
            assert_eq!(&store.tree_index(TreeId(*t))?.ok_or("tree missing")?, idx);
        }
        let (hits, stats) = store.lookup_with_stats(&forest[0].1, 0.5)?;
        assert!(stats.used_inverted);
        assert_eq!(stats.plan, crate::ops::LookupPlan::CandidateMerge);
        assert_eq!(hits.len(), 6, "all six identical trees are at distance 0");
        drop(store);
        // The migration was committed: a second open sees format v3 state.
        let again = IndexStore::open(&path)?;
        assert!(again.verify()?.blocks > 0);
        Ok(())
    }

    /// Crash enumeration over the v2 → v3 migration itself: whatever I/O
    /// event the crash lands on, the reopened file either still holds the
    /// v2 state (rolled back, migrates again) or the committed v3 state —
    /// the visible contents never change and verification always passes.
    #[test]
    fn version2_migration_recovers_at_every_crash_point() -> TestResult {
        let params = PQParams::new(2, 3);
        let path = std::path::Path::new("/fault/migrate-v2.pqg");
        let forest = version2_forest(params);

        // Fault-free pass: count the setup I/O and the migration I/O.
        let vfs = crate::vfs::FaultVfs::new();
        write_version2_file(path, std::sync::Arc::new(vfs.clone()), params, &forest)?;
        let setup_events = vfs.io_events();
        let store = IndexStore::open_with(path, std::sync::Arc::new(vfs.clone()))?;
        drop(store);
        let total_events = vfs.io_events();
        assert!(total_events > setup_events, "migration must do I/O");

        for mode in [
            crate::vfs::CrashMode::KeepUnsynced,
            crate::vfs::CrashMode::DropUnsynced,
            crate::vfs::CrashMode::DropUnsyncedMatching("-journal".into()),
            crate::vfs::CrashMode::DropUnsyncedMatching(".pqg".into()),
        ] {
            for n in setup_events..total_events {
                let vfs = crate::vfs::FaultVfs::new();
                write_version2_file(path, std::sync::Arc::new(vfs.clone()), params, &forest)?;
                assert_eq!(vfs.io_events(), setup_events, "setup is deterministic");
                vfs.crash_at(n, mode.clone());
                // The migrating open may fail; the error is the point.
                let _ = IndexStore::open_with(path, std::sync::Arc::new(vfs.clone()));
                assert!(vfs.crashed(), "crash point {n} ({mode:?}) never fired");
                let reopened = IndexStore::open_with(path, std::sync::Arc::new(vfs.surviving()))
                    .unwrap_or_else(|e| panic!("crash point {n} ({mode:?}): reopen failed: {e}"));
                reopened
                    .verify()
                    .unwrap_or_else(|e| panic!("crash point {n} ({mode:?}): verify: {e}"));
                for (t, idx) in &forest {
                    assert_eq!(
                        reopened.tree_index(TreeId(*t))?.as_ref(),
                        Some(idx),
                        "crash point {n} ({mode:?}): tree {t} changed across migration"
                    );
                }
            }
        }
        Ok(())
    }

    /// Demotes a freshly built store to format v3 through `vfs`: frees the
    /// gram filter and stamps version 3 — exactly the state a pre-filter
    /// build left behind.
    fn write_version3_file(
        path: &std::path::Path,
        vfs: std::sync::Arc<dyn crate::vfs::Vfs>,
        params: PQParams,
        forest: &[(u64, TreeIndex)],
    ) -> TestResult {
        let store = IndexStore::bulk_create_with(
            path,
            params,
            forest.iter().map(|(t, idx)| (TreeId(*t), idx)),
            vfs,
        )?;
        crate::filter::free_filter(&store.pool)?;
        store.pool.set_meta(crate::ops::SLOT_VERSION, crate::ops::FORMAT_VERSION_V3)?;
        store.pool.sync()?;
        Ok(())
    }

    #[test]
    fn opening_a_version3_file_builds_the_gram_filter() -> TestResult {
        let params = PQParams::new(2, 3);
        let path = tmp("legacy-v3.pqg");
        let forest = version2_forest(params);
        write_version3_file(
            &path,
            std::sync::Arc::new(crate::vfs::RealVfs),
            params,
            &forest,
        )?;
        let store = IndexStore::open(&path)?;
        assert!(
            store.filter.is_some(),
            "v3 migration must build the gram filter"
        );
        store.verify()?; // includes the filter-superset audit
        let (hits, stats) = store.lookup_with_stats(&forest[0].1, 0.5)?;
        assert_eq!(hits.len(), 6);
        assert!(stats.used_inverted);
        Ok(())
    }

    /// Crash enumeration over the v3 → v4 migration (gram-filter build):
    /// whatever I/O event the crash lands on, the reopened file either
    /// still holds v3 (migrates again) or the committed v4 state — the
    /// visible contents never change and verification always passes.
    #[test]
    fn version3_migration_recovers_at_every_crash_point() -> TestResult {
        let params = PQParams::new(2, 3);
        let path = std::path::Path::new("/fault/migrate-v3.pqg");
        let forest = version2_forest(params);

        let vfs = crate::vfs::FaultVfs::new();
        write_version3_file(path, std::sync::Arc::new(vfs.clone()), params, &forest)?;
        let setup_events = vfs.io_events();
        let store = IndexStore::open_with(path, std::sync::Arc::new(vfs.clone()))?;
        drop(store);
        let total_events = vfs.io_events();
        assert!(total_events > setup_events, "migration must do I/O");

        for mode in [
            crate::vfs::CrashMode::KeepUnsynced,
            crate::vfs::CrashMode::DropUnsynced,
            crate::vfs::CrashMode::DropUnsyncedMatching("-journal".into()),
            crate::vfs::CrashMode::DropUnsyncedMatching(".pqg".into()),
        ] {
            for n in setup_events..total_events {
                let vfs = crate::vfs::FaultVfs::new();
                write_version3_file(path, std::sync::Arc::new(vfs.clone()), params, &forest)?;
                assert_eq!(vfs.io_events(), setup_events, "setup is deterministic");
                vfs.crash_at(n, mode.clone());
                let _ = IndexStore::open_with(path, std::sync::Arc::new(vfs.clone()));
                assert!(vfs.crashed(), "crash point {n} ({mode:?}) never fired");
                let reopened = IndexStore::open_with(path, std::sync::Arc::new(vfs.surviving()))
                    .unwrap_or_else(|e| panic!("crash point {n} ({mode:?}): reopen failed: {e}"));
                reopened
                    .verify()
                    .unwrap_or_else(|e| panic!("crash point {n} ({mode:?}): verify: {e}"));
                for (t, idx) in &forest {
                    assert_eq!(
                        reopened.tree_index(TreeId(*t))?.as_ref(),
                        Some(idx),
                        "crash point {n} ({mode:?}): tree {t} changed across migration"
                    );
                }
            }
        }
        Ok(())
    }

    #[test]
    fn future_format_version_is_rejected() -> TestResult {
        let params = PQParams::default();
        let path = tmp("future.pqg");
        {
            IndexStore::create(&path, params)?;
        }
        {
            let pool = BufferPool::new(
                Pager::open_with(&path, std::sync::Arc::new(crate::vfs::RealVfs))?,
                DEFAULT_CAPACITY,
            );
            pool.set_meta(crate::ops::SLOT_VERSION, crate::ops::FORMAT_VERSION + 1)?;
            pool.flush()?;
        }
        let err = IndexStore::open(&path).map(|_| ()).unwrap_err();
        assert!(matches!(err, IndexError::Store(StoreError::Corrupt(_))));
        Ok(())
    }
}

#[cfg(test)]
mod kind_tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn document_store_file_is_rejected_by_index_store(
    ) -> std::result::Result<(), Box<dyn std::error::Error>> {
        let dir = std::env::temp_dir().join(format!("pqgram-kind-{}", std::process::id()));
        std::fs::create_dir_all(&dir).ok();
        let path: PathBuf = dir.join("docs-as-index.docs");
        std::fs::remove_file(&path).ok();
        crate::DocumentStore::create(&path, PQParams::default())?;
        let err = IndexStore::open(&path).map(|_| ()).unwrap_err();
        assert!(matches!(err, IndexError::Store(StoreError::Corrupt(_))));
        Ok(())
    }
}
