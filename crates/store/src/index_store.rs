//! The persistent pq-gram forest index.
//!
//! One store file holds the relation `(treeId, pqg, cnt)` of Figure 4 in a
//! B+-tree keyed by `(tree_id, gram fingerprint)`, plus the `p, q`
//! parameters in the header. All mutating operations are transactional
//! (rollback journal): a crash mid-update leaves the previous index state.
//!
//! The two workloads of the paper's evaluation map to:
//!
//! * **approximate lookup** ([`IndexStore::lookup`]) — one ordered scan of
//!   the relation computes the pq-gram distance of the query to every
//!   stored tree (Section 9.1);
//! * **incremental update** ([`IndexStore::apply_delta`],
//!   [`IndexStore::update_from_log`]) — applies `I ← I \ I⁻ ⊎ I⁺` from an
//!   edit log without touching unrelated entries (Sections 8–9.2).

use crate::btree::BTree;
use crate::buffer::{BufferPool, DEFAULT_CAPACITY};
use crate::pager::{Pager, StoreError};
use pqgram_core::maintain::{compute_index_delta, IndexDelta, MaintainError, UpdateStats};
use pqgram_core::{GramKey, LookupHit, PQParams, TreeId, TreeIndex};
use pqgram_tree::{EditLog, LabelTable, Tree};
use std::fmt;
use std::path::Path;

const META_ROOT: usize = 0;
const META_P: usize = 1;
const META_Q: usize = 2;
const META_KIND: usize = 7;
const KIND_INDEX_STORE: u64 = 1;

/// Errors of the persistent index layer.
#[derive(Debug)]
pub enum IndexError {
    /// Underlying storage failure.
    Store(StoreError),
    /// Incremental maintenance failure (log/tree/index mismatch).
    Maintain(MaintainError),
    /// A delta removal referenced a gram the stored tree does not have.
    InconsistentDelta(TreeId, GramKey),
    /// Operation on a tree that is not in the store.
    UnknownTree(TreeId),
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::Store(e) => write!(f, "storage error: {e}"),
            IndexError::Maintain(e) => write!(f, "maintenance error: {e}"),
            IndexError::InconsistentDelta(t, g) => {
                write!(f, "delta removes gram {g:#x} absent from {t:?}")
            }
            IndexError::UnknownTree(t) => write!(f, "tree {t:?} is not in the store"),
        }
    }
}

impl std::error::Error for IndexError {}

impl From<StoreError> for IndexError {
    fn from(e: StoreError) -> Self {
        IndexError::Store(e)
    }
}

impl From<MaintainError> for IndexError {
    fn from(e: MaintainError) -> Self {
        IndexError::Maintain(e)
    }
}

type Result<T> = std::result::Result<T, IndexError>;

/// A persistent forest index file.
pub struct IndexStore {
    pool: BufferPool,
    params: PQParams,
}

impl IndexStore {
    /// Creates a new store file for the given pq-gram parameters.
    pub fn create(path: &Path, params: PQParams) -> Result<IndexStore> {
        Self::create_with(path, params, std::sync::Arc::new(crate::vfs::RealVfs))
    }

    /// [`IndexStore::create`] on an explicit [`crate::vfs::Vfs`] (fault
    /// injection, tests).
    pub fn create_with(
        path: &Path,
        params: PQParams,
        vfs: std::sync::Arc<dyn crate::vfs::Vfs>,
    ) -> Result<IndexStore> {
        let pool = BufferPool::new(Pager::create_with(path, vfs)?, DEFAULT_CAPACITY);
        pool.set_meta(META_P, params.p() as u64)?;
        pool.set_meta(META_Q, params.q() as u64)?;
        pool.set_meta(META_KIND, KIND_INDEX_STORE)?;
        BTree::open(&pool, META_ROOT)?;
        pool.flush()?;
        Ok(IndexStore { pool, params })
    }

    /// Opens an existing store (running crash recovery if needed).
    pub fn open(path: &Path) -> Result<IndexStore> {
        Self::open_with(path, std::sync::Arc::new(crate::vfs::RealVfs))
    }

    /// [`IndexStore::open`] on an explicit [`crate::vfs::Vfs`] (fault
    /// injection, tests).
    pub fn open_with(path: &Path, vfs: std::sync::Arc<dyn crate::vfs::Vfs>) -> Result<IndexStore> {
        let pool = BufferPool::new(Pager::open_with(path, vfs)?, DEFAULT_CAPACITY);
        if pool.meta(META_KIND) != KIND_INDEX_STORE {
            return Err(IndexError::Store(StoreError::Corrupt(
                "not an index store (kind marker mismatch; document stores open with \
                 DocumentStore)"
                    .into(),
            )));
        }
        let (p, q) = (pool.meta(META_P) as usize, pool.meta(META_Q) as usize);
        if p == 0 || q == 0 {
            return Err(IndexError::Store(StoreError::Corrupt(
                "missing pq parameters in header".into(),
            )));
        }
        let params = PQParams::new(p, q);
        Ok(IndexStore { pool, params })
    }

    /// The pq-gram parameters this store was created with.
    pub fn params(&self) -> PQParams {
        self.params
    }

    fn tree(&self) -> Result<BTree<'_>> {
        Ok(BTree::open(&self.pool, META_ROOT)?)
    }

    /// Inserts (or replaces) the index of one tree. Transactional.
    pub fn put_tree(&mut self, id: TreeId, index: &TreeIndex) -> Result<()> {
        assert_eq!(index.params(), self.params, "parameter mismatch");
        self.transactional(|store| {
            crate::ops::delete_tree_entries(&store.pool, META_ROOT, id)?;
            crate::ops::put_tree_entries(&store.pool, META_ROOT, id, index)?;
            Ok(())
        })
    }

    /// Removes a tree from the store. Transactional. Returns `true` if the
    /// tree existed.
    pub fn remove_tree(&mut self, id: TreeId) -> Result<bool> {
        let existed = self.contains_tree(id)?;
        if existed {
            self.transactional(|store| store.delete_tree_entries(id))?;
        }
        Ok(existed)
    }

    fn delete_tree_entries(&self, id: TreeId) -> Result<()> {
        Ok(crate::ops::delete_tree_entries(&self.pool, META_ROOT, id)?)
    }

    /// True if any gram of `id` is stored.
    pub fn contains_tree(&self, id: TreeId) -> Result<bool> {
        Ok(crate::ops::contains_tree(&self.pool, META_ROOT, id)?)
    }

    /// Materializes the in-memory index of one stored tree.
    pub fn tree_index(&self, id: TreeId) -> Result<Option<TreeIndex>> {
        Ok(crate::ops::tree_index(
            &self.pool,
            META_ROOT,
            self.params,
            id,
        )?)
    }

    /// All stored tree ids, ascending (skip-scan over the key space).
    pub fn tree_ids(&self) -> Result<Vec<TreeId>> {
        Ok(crate::ops::tree_ids(&self.pool, META_ROOT)?)
    }

    /// Applies an incremental update delta (`I ← I \ I⁻ ⊎ I⁺`) to one tree.
    /// Transactional: on any inconsistency the store is left unchanged.
    pub fn apply_delta(&mut self, id: TreeId, delta: &IndexDelta) -> Result<()> {
        self.transactional(|store| {
            match crate::ops::apply_delta_rows(&store.pool, META_ROOT, id, delta)? {
                None => Ok(()),
                Some(gram) => Err(IndexError::InconsistentDelta(id, gram)),
            }
        })
    }

    /// The full pipeline of the paper: given the stored old index of `id`,
    /// the resulting tree and the log of inverse operations, computes
    /// `I⁺`/`I⁻` (Algorithm 1) and applies them in one transaction.
    pub fn update_from_log(
        &mut self,
        id: TreeId,
        tree: &Tree,
        labels: &LabelTable,
        log: &EditLog,
    ) -> Result<UpdateStats> {
        if !self.contains_tree(id)? {
            return Err(IndexError::UnknownTree(id));
        }
        let (delta, mut stats) = compute_index_delta(tree, labels, log, self.params)?;
        let t = std::time::Instant::now();
        self.apply_delta(id, &delta)?;
        stats.apply = t.elapsed();
        Ok(stats)
    }

    /// The approximate lookup of Section 3.2 over the stored forest: all
    /// trees with `dist(query, T) < tau`, ascending by distance. One ordered
    /// scan of the relation.
    pub fn lookup(&self, query: &TreeIndex, tau: f64) -> Result<Vec<LookupHit>> {
        assert_eq!(query.params(), self.params, "parameter mismatch");
        Ok(crate::ops::lookup_scan(&self.pool, META_ROOT, query, tau)?)
    }

    /// Number of distinct `(tree, gram)` rows (size of the relation).
    pub fn row_count(&self) -> Result<u64> {
        Ok(self.tree()?.len()?)
    }

    /// Verifies the on-disk B+-tree invariants (see
    /// [`crate::btree::BTree::verify`]).
    pub fn verify(&self) -> Result<crate::btree::BTreeCheck> {
        Ok(self.tree()?.verify()?)
    }

    /// Flushes caches to disk (no-op for data already committed).
    pub fn flush(&self) -> Result<()> {
        Ok(self.pool.flush()?)
    }

    /// Creates a store and bulk-loads a whole forest in one pass (sorted
    /// bottom-up B+-tree build) — much faster than per-tree [`Self::put_tree`]
    /// for initial indexing.
    pub fn bulk_create<'a, I>(path: &Path, params: PQParams, forest: I) -> Result<IndexStore>
    where
        I: IntoIterator<Item = (TreeId, &'a TreeIndex)>,
    {
        let mut rows: Vec<((u64, u64), u32)> = Vec::new();
        for (id, index) in forest {
            assert_eq!(index.params(), params, "parameter mismatch");
            for (gram, count) in index.iter() {
                rows.push(((id.0, gram), count));
            }
        }
        rows.sort_unstable_by_key(|&(k, _)| k);
        let store = IndexStore::create(path, params)?;
        let tree = store.tree()?;
        tree.bulk_load(rows)?;
        store.pool.flush()?;
        Ok(store)
    }

    /// Rewrites the store into a fresh compact file at `target` (bulk-built
    /// B+-tree, no free pages, ~90% leaf fill) and returns the new store.
    pub fn compact_to(&self, target: &Path) -> Result<IndexStore> {
        let compacted = IndexStore::create(target, self.params)?;
        let src = self.tree()?;
        let dst = compacted.tree()?;
        let mut rows: Vec<((u64, u64), u32)> = Vec::new();
        src.for_each_range((0, 0), (u64::MAX, u64::MAX), |k, v| {
            rows.push((k, v));
            true
        })?;
        dst.bulk_load(rows)?;
        compacted.pool.flush()?;
        Ok(compacted)
    }

    fn transactional(&mut self, f: impl FnOnce(&Self) -> Result<()>) -> Result<()> {
        self.pool.begin()?;
        match f(self) {
            Ok(()) => {
                self.pool.commit()?;
                // Debug builds audit the full storage invariants after
                // every committed mutation; release builds pay nothing.
                #[cfg(debug_assertions)]
                {
                    self.tree()?.verify()?;
                    self.pool.validate_pager()?;
                }
                Ok(())
            }
            Err(e) => {
                self.pool.rollback()?;
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqgram_core::{build_index, pq_distance};
    use pqgram_tree::generate::{random_tree, RandomTreeConfig};
    use pqgram_tree::{record_script, ScriptConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pqgram-istore-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        std::fs::remove_file(&p).ok();
        let mut j = p.as_os_str().to_owned();
        j.push("-journal");
        std::fs::remove_file(PathBuf::from(j)).ok();
        p
    }

    fn setup(seed: u64, n: usize) -> (Tree, LabelTable) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut lt = LabelTable::new();
        let t = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(n, 6));
        (t, lt)
    }

    #[test]
    fn put_get_roundtrip() {
        let params = PQParams::default();
        let (t, lt) = setup(1, 300);
        let idx = build_index(&t, &lt, params);
        let mut store = IndexStore::create(&tmp("roundtrip.pqg"), params).unwrap();
        store.put_tree(TreeId(7), &idx).unwrap();
        let back = store.tree_index(TreeId(7)).unwrap().unwrap();
        assert_eq!(back, idx);
        assert!(store.tree_index(TreeId(8)).unwrap().is_none());
        assert_eq!(store.tree_ids().unwrap(), vec![TreeId(7)]);
    }

    #[test]
    fn reopen_preserves_params_and_data() {
        let params = PQParams::new(2, 4);
        let path = tmp("reopen.pqg");
        let (t, lt) = setup(2, 200);
        let idx = build_index(&t, &lt, params);
        {
            let mut store = IndexStore::create(&path, params).unwrap();
            store.put_tree(TreeId(1), &idx).unwrap();
        }
        let store = IndexStore::open(&path).unwrap();
        assert_eq!(store.params(), params);
        assert_eq!(store.tree_index(TreeId(1)).unwrap().unwrap(), idx);
    }

    #[test]
    fn put_replaces_previous_index() {
        let params = PQParams::default();
        let (t1, lt) = setup(3, 150);
        let (t2, lt2) = setup(4, 150);
        let mut store = IndexStore::create(&tmp("replace.pqg"), params).unwrap();
        store
            .put_tree(TreeId(1), &build_index(&t1, &lt, params))
            .unwrap();
        let idx2 = build_index(&t2, &lt2, params);
        store.put_tree(TreeId(1), &idx2).unwrap();
        assert_eq!(store.tree_index(TreeId(1)).unwrap().unwrap(), idx2);
    }

    #[test]
    fn remove_tree_works() {
        let params = PQParams::default();
        let (t, lt) = setup(5, 100);
        let mut store = IndexStore::create(&tmp("remove.pqg"), params).unwrap();
        store
            .put_tree(TreeId(3), &build_index(&t, &lt, params))
            .unwrap();
        assert!(store.remove_tree(TreeId(3)).unwrap());
        assert!(!store.remove_tree(TreeId(3)).unwrap());
        assert!(store.tree_index(TreeId(3)).unwrap().is_none());
        assert_eq!(store.row_count().unwrap(), 0);
    }

    #[test]
    fn lookup_matches_in_memory_distance() {
        let params = PQParams::default();
        let mut store = IndexStore::create(&tmp("lookup.pqg"), params).unwrap();
        let mut indexes = Vec::new();
        for i in 0..20u64 {
            let (t, lt) = setup(100 + i, 120);
            let idx = build_index(&t, &lt, params);
            store.put_tree(TreeId(i), &idx).unwrap();
            indexes.push(idx);
        }
        let (q, qlt) = setup(100, 120); // same seed as tree 0: identical
        let query = build_index(&q, &qlt, params);
        let hits = store.lookup(&query, 1.01).unwrap();
        assert_eq!(hits.len(), 20);
        assert_eq!(hits[0].tree_id, TreeId(0));
        assert_eq!(hits[0].distance, 0.0);
        for hit in &hits {
            let expected = pq_distance(&query, &indexes[hit.tree_id.0 as usize]);
            assert!((hit.distance - expected).abs() < 1e-12);
        }
        // Threshold filters.
        let close = store.lookup(&query, 0.5).unwrap();
        assert!(close.len() < 20);
        assert!(close.iter().any(|h| h.tree_id == TreeId(0)));
    }

    #[test]
    fn incremental_update_from_log_matches_rebuild() {
        let params = PQParams::default();
        let mut rng = StdRng::seed_from_u64(9);
        let mut lt = LabelTable::new();
        let mut tree = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(400, 6));
        let mut store = IndexStore::create(&tmp("incr.pqg"), params).unwrap();
        store
            .put_tree(TreeId(0), &build_index(&tree, &lt, params))
            .unwrap();

        let alphabet: Vec<_> = lt.iter().map(|(s, _)| s).collect();
        let (log, _) = record_script(&mut rng, &mut tree, &ScriptConfig::new(60, alphabet));
        let stats = store.update_from_log(TreeId(0), &tree, &lt, &log).unwrap();
        assert_eq!(stats.ops, 60);
        let stored = store.tree_index(TreeId(0)).unwrap().unwrap();
        assert_eq!(stored, build_index(&tree, &lt, params));
    }

    #[test]
    fn update_unknown_tree_fails() {
        let params = PQParams::default();
        let (t, lt) = setup(6, 50);
        let mut store = IndexStore::create(&tmp("unknown.pqg"), params).unwrap();
        let err = store
            .update_from_log(TreeId(9), &t, &lt, &EditLog::new())
            .unwrap_err();
        assert!(matches!(err, IndexError::UnknownTree(TreeId(9))));
    }

    #[test]
    fn inconsistent_delta_rolls_back() {
        let params = PQParams::default();
        let (t, lt) = setup(7, 100);
        let idx = build_index(&t, &lt, params);
        let mut store = IndexStore::create(&tmp("badelta.pqg"), params).unwrap();
        store.put_tree(TreeId(0), &idx).unwrap();
        // A delta that first adds (visible inside the tx) then removes an
        // absent gram: the whole transaction must roll back.
        let delta = IndexDelta {
            additions: vec![0xdead_beef],
            removals: vec![0x1234_5678_9abc], // never in the index
        };
        // removals are applied first in apply_delta, so reorder to make the
        // addition land before the failure:
        let delta = IndexDelta {
            additions: delta.additions,
            removals: delta.removals,
        };
        let err = store.apply_delta(TreeId(0), &delta).unwrap_err();
        assert!(matches!(err, IndexError::InconsistentDelta(..)));
        assert_eq!(
            store.tree_index(TreeId(0)).unwrap().unwrap(),
            idx,
            "rolled back"
        );
    }

    #[test]
    fn many_trees_skip_scan() {
        let params = PQParams::new(2, 2);
        let mut store = IndexStore::create(&tmp("ids.pqg"), params).unwrap();
        for i in [5u64, 17, 0, 99, 3] {
            let (t, lt) = setup(i, 30);
            store
                .put_tree(TreeId(i), &build_index(&t, &lt, params))
                .unwrap();
        }
        assert_eq!(
            store.tree_ids().unwrap(),
            vec![TreeId(0), TreeId(3), TreeId(5), TreeId(17), TreeId(99)]
        );
    }
}

#[cfg(test)]
mod kind_tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn document_store_file_is_rejected_by_index_store() {
        let dir = std::env::temp_dir().join(format!("pqgram-kind-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path: PathBuf = dir.join("docs-as-index.docs");
        std::fs::remove_file(&path).ok();
        crate::DocumentStore::create(&path, PQParams::default()).unwrap();
        let err = IndexStore::open(&path).map(|_| ()).unwrap_err();
        assert!(matches!(err, IndexError::Store(StoreError::Corrupt(_))));
    }
}
