//! PGM-style learned fence index over an immutable inverted directory.
//!
//! Immutable segments never mutate their inverted relation after bulk load,
//! so the directory can be mirrored into three flat arrays at open time and
//! probed without any B+-tree descent. On top of the arrays sits a
//! piecewise-linear model (one-pass shrinking-cone fit, max error
//! [`FENCE_EPSILON`]): `locate` predicts the position of a gram, verifies
//! the prediction with an O(1) neighbour check, and only falls back to a
//! full binary search when floating-point precision loss over 64-bit gram
//! fingerprints makes the prediction unusable. Lookup correctness never
//! depends on the model — the model only narrows the search window.
//!
//! Inline postings are answered straight from the arrays; posting blocks
//! are still decoded from their pack pages via [`postings::read_block`].

use std::ops::Range;

use crate::btree::BTree;
use crate::buffer::BufferPool;
use crate::pager::Result;
use crate::postings::{self, DirValue, ProbeCounters};

/// Maximum positions a prediction may be off before `locate` falls back to
/// binary search within the window.
const FENCE_EPSILON: usize = 16;

/// One linear segment of the piecewise model: for grams at or after `key`,
/// predicted index = `intercept + slope * (gram - key)`.
#[derive(Clone, Copy, Debug)]
struct PlaSegment {
    key: u64,
    slope: f64,
    intercept: f64,
}

/// A learned fence over one immutable inverted directory.
#[derive(Clone, Debug, Default)]
pub(crate) struct Fence {
    grams: Vec<u64>,
    tids: Vec<u64>,
    vals: Vec<u32>,
    segs: Vec<PlaSegment>,
}

impl Fence {
    /// Builds a fence by scanning the inverted directory once.
    pub fn build(dir: &BTree<'_>) -> Result<Fence> {
        let mut grams = Vec::new();
        let mut tids = Vec::new();
        let mut vals = Vec::new();
        dir.for_each_range((u64::MIN, u64::MIN), (u64::MAX, u64::MAX), |(g, t), v| {
            grams.push(g);
            tids.push(t);
            vals.push(v);
            true
        })?;
        Ok(Fence::from_rows(grams, tids, vals))
    }

    /// Builds a fence from already-materialised directory rows.
    pub fn from_rows(grams: Vec<u64>, tids: Vec<u64>, vals: Vec<u32>) -> Fence {
        let segs = fit_pla(&grams);
        Fence {
            grams,
            tids,
            vals,
            segs,
        }
    }

    /// Number of directory rows covered by the fence.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.grams.len()
    }

    /// Number of linear segments in the model (diagnostics).
    #[cfg(test)]
    pub fn segments(&self) -> usize {
        self.segs.len()
    }

    /// The directory row range holding `gram`'s entries (empty if absent).
    pub fn locate(&self, gram: u64) -> Range<usize> {
        let n = self.grams.len();
        let start = match self.predict(gram) {
            Some(p) => p,
            None => self.grams.partition_point(|&g| g < gram),
        };
        let end = start
            + self
                .grams
                .get(start..)
                .map(|rest| rest.partition_point(|&g| g <= gram))
                .unwrap_or(0);
        debug_assert!(
            start <= end && end <= n,
            "locate range must be ordered and in bounds"
        );
        start..end
    }

    /// Predicted-and-verified first index with `grams[i] >= gram`, or
    /// `None` when the prediction cannot be validated in O(1).
    fn predict(&self, gram: u64) -> Option<usize> {
        let n = self.grams.len();
        let si = self.segs.partition_point(|s| s.key <= gram);
        let seg = self.segs.get(si.checked_sub(1)?)?;
        let dx = (gram - seg.key) as f64;
        let raw = seg.intercept + seg.slope * dx;
        let guess = if raw.is_finite() && raw > 0.0 {
            (raw as usize).min(n)
        } else {
            0
        };
        let lo = guess.saturating_sub(FENCE_EPSILON);
        let hi = (guess + FENCE_EPSILON).min(n);
        let window = self.grams.get(lo..hi)?;
        let p = lo + window.partition_point(|&g| g < gram);
        // O(1) validation: p must be the true partition point globally.
        let ok_left = p == 0 || self.grams.get(p - 1).is_some_and(|&g| g < gram);
        let ok_right = p == n || self.grams.get(p).is_some_and(|&g| g >= gram);
        (ok_left && ok_right).then_some(p)
    }

    /// Row estimate for `gram`'s postings from the in-memory directory
    /// arrays alone — no block decode, no page reads. Same cost model as
    /// [`crate::postings::estimate_rows`]: inline rows count one (exact);
    /// blocks span gram boundaries, so only blocks beyond the first keyed
    /// inside the gram count the per-block cap, while the first one and a
    /// block at the boundary entry just past the gram count the small
    /// straddle allowance. Feeds the lookup planner's skip-cost ordering
    /// only — any value is correct.
    pub fn estimate_rows(&self, gram: u64) -> u64 {
        let cap = u64::try_from(postings::MAX_BLOCK_ROWS).unwrap_or(u64::MAX);
        let straddle = u64::try_from(postings::BLOCK_MIN).unwrap_or(u64::MAX);
        let range = self.locate(gram);
        let boundary = range.end;
        let mut rows = 0u64;
        let mut blocks_inside = 0u64;
        for i in range {
            match self.vals.get(i).map(|&v| postings::dir_value(v)) {
                Some(DirValue::Inline(_)) => rows += 1,
                Some(DirValue::Block(_)) => {
                    rows += if blocks_inside == 0 { straddle } else { cap };
                    blocks_inside += 1;
                }
                None => break,
            }
        }
        if let Some(&raw) = self.vals.get(boundary) {
            if matches!(postings::dir_value(raw), DirValue::Block(_)) {
                rows += straddle;
            }
        }
        rows
    }

    /// Streams every posting of `gram` in ascending treeId order, answering
    /// inline rows from the in-memory arrays and decoding blocks from their
    /// pack pages. Blocks span gram boundaries, so besides the rows keyed
    /// inside the gram the entry just past it is inspected: its block may
    /// still start inside the gram. `f` returns `false` to stop early.
    pub fn for_each_posting(
        &self,
        pool: &BufferPool,
        gram: u64,
        cache: &mut postings::BlockCache,
        counters: &mut ProbeCounters,
        mut f: impl FnMut(u64, u32) -> bool,
    ) -> Result<()> {
        let range = self.locate(gram);
        let boundary = range.end;
        for i in range {
            let (t, raw) = match (self.tids.get(i), self.vals.get(i)) {
                (Some(&t), Some(&v)) => (t, v),
                _ => break,
            };
            match postings::dir_value_checked(raw)? {
                DirValue::Inline(c) => {
                    counters.rows += 1;
                    if !f(t, c) {
                        return Ok(());
                    }
                }
                DirValue::Block(page) => {
                    if !emit_block(pool, page, (gram, t), gram, cache, counters, &mut f)? {
                        return Ok(());
                    }
                }
            }
        }
        // Boundary entry keyed past the gram: only a block can still hold
        // rows of `gram`; its header metadata decides without a decode.
        if let (Some(&g), Some(&t), Some(&raw)) = (
            self.grams.get(boundary),
            self.tids.get(boundary),
            self.vals.get(boundary),
        ) {
            if let DirValue::Block(page) = postings::dir_value_checked(raw)? {
                if cache.peek_first(pool, page, (g, t))?.0 > gram {
                    counters.blocks_skipped += 1;
                } else {
                    emit_block(pool, page, (g, t), gram, cache, counters, &mut f)?;
                }
            }
        }
        Ok(())
    }
}

/// Decodes the block keyed `key` (through the probe memo) and emits its
/// rows matching `gram`. Returns `false` if `f` asked to stop.
fn emit_block(
    pool: &BufferPool,
    page: crate::page::PageId,
    key: (u64, u64),
    gram: u64,
    cache: &mut postings::BlockCache,
    counters: &mut ProbeCounters,
    f: &mut impl FnMut(u64, u32) -> bool,
) -> Result<bool> {
    cache.for_each_gram(pool, page, key, gram, counters, f)
}

/// One-pass shrinking-cone piecewise-linear fit over the first index of
/// each distinct gram, with maximum prediction error [`FENCE_EPSILON`].
fn fit_pla(grams: &[u64]) -> Vec<PlaSegment> {
    let eps = FENCE_EPSILON as f64;
    let mut segs: Vec<PlaSegment> = Vec::new();
    let mut origin: Option<(u64, usize)> = None;
    let mut lo = f64::NEG_INFINITY;
    let mut hi = f64::INFINITY;

    let mut seal = |origin: &mut Option<(u64, usize)>, lo: &mut f64, hi: &mut f64| {
        if let Some((x0, y0)) = origin.take() {
            let slope = match (lo.is_finite(), hi.is_finite()) {
                (true, true) => (*lo + *hi) / 2.0,
                (true, false) => *lo,
                (false, true) => *hi,
                (false, false) => 0.0,
            };
            segs.push(PlaSegment {
                key: x0,
                slope,
                intercept: y0 as f64,
            });
        }
        *lo = f64::NEG_INFINITY;
        *hi = f64::INFINITY;
    };

    let mut prev_gram: Option<u64> = None;
    for (i, &g) in grams.iter().enumerate() {
        if prev_gram == Some(g) {
            continue;
        }
        prev_gram = Some(g);
        match origin {
            None => {
                origin = Some((g, i));
            }
            Some((x0, y0)) => {
                let dx = (g - x0) as f64;
                let y = i as f64;
                let y0f = y0 as f64;
                // Feasible slope band for this point, intersected with the cone.
                let band_lo = (y - eps - y0f) / dx;
                let band_hi = (y + eps - y0f) / dx;
                let new_lo = lo.max(band_lo);
                let new_hi = hi.min(band_hi);
                if new_lo > new_hi || !dx.is_finite() || dx == 0.0 {
                    seal(&mut origin, &mut lo, &mut hi);
                    origin = Some((g, i));
                } else {
                    lo = new_lo;
                    hi = new_hi;
                }
            }
        }
    }
    seal(&mut origin, &mut lo, &mut hi);
    segs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fence_over(grams: Vec<u64>) -> Fence {
        let n = grams.len();
        let tids = (0..n as u64).collect();
        let vals = vec![postings::INLINE_BIT | 1; n];
        Fence::from_rows(grams, tids, vals)
    }

    #[test]
    fn locate_matches_binary_search_on_linear_keys() {
        let grams: Vec<u64> = (0..10_000u64).map(|i| i * 3).collect();
        let fence = fence_over(grams.clone());
        assert!(
            fence.segments() < 50,
            "linear data should need few segments"
        );
        for probe in [0u64, 1, 2, 3, 299, 300, 29_997, 29_998, 40_000] {
            let expect =
                grams.partition_point(|&g| g < probe)..grams.partition_point(|&g| g <= probe);
            assert_eq!(fence.locate(probe), expect, "probe {probe}");
        }
    }

    #[test]
    fn locate_matches_binary_search_on_adversarial_keys() {
        // Clustered + huge jumps + duplicate runs: precision loss territory.
        let mut grams = Vec::new();
        for base in [0u64, 1 << 20, 1 << 44, u64::MAX - 4096] {
            for i in 0..512u64 {
                grams.push(base + i / 4); // runs of 4 duplicates
            }
        }
        grams.sort_unstable();
        let fence = fence_over(grams.clone());
        let mut probes: Vec<u64> = grams.clone();
        probes.extend([5u64, 1 << 30, u64::MAX, 0]);
        for probe in probes {
            let expect =
                grams.partition_point(|&g| g < probe)..grams.partition_point(|&g| g <= probe);
            assert_eq!(fence.locate(probe), expect, "probe {probe}");
        }
    }

    #[test]
    fn empty_fence_locates_nothing() {
        let fence = fence_over(Vec::new());
        assert_eq!(fence.locate(42), 0..0);
        assert_eq!(fence.len(), 0);
        assert_eq!(fence.segments(), 0, "no rows fit no model segments");
    }

    /// Binary-search oracle: `locate` must equal the partition-point range
    /// for every probe, no matter what the model predicts.
    fn assert_matches_oracle(grams: &[u64], probes: impl IntoIterator<Item = u64>) {
        let fence = fence_over(grams.to_vec());
        for probe in probes {
            let expect =
                grams.partition_point(|&g| g < probe)..grams.partition_point(|&g| g <= probe);
            assert_eq!(fence.locate(probe), expect, "probe {probe}");
        }
    }

    #[test]
    fn single_key_directory_round_trips() {
        for key in [0u64, 1, 7, u64::MAX - 1, u64::MAX] {
            assert_matches_oracle(
                &[key],
                [
                    key,
                    key.saturating_sub(1),
                    key.saturating_add(1),
                    0,
                    u64::MAX,
                ],
            );
        }
    }

    #[test]
    fn all_duplicate_directory_round_trips() {
        let grams = vec![99u64; 1000];
        assert_matches_oracle(&grams, [98, 99, 100, 0, u64::MAX]);
    }

    /// Duplicate runs of exactly [`FENCE_EPSILON`] rows shift every later
    /// first-index by the model's maximum tolerated error, pinning
    /// predictions to the verification boundary. `locate` must stay exact
    /// whether the prediction is accepted or falls back.
    #[test]
    fn predictions_exactly_epsilon_off_stay_correct() {
        let mut grams = Vec::new();
        for i in 0..256u64 {
            grams.push(i * 2);
            if i % 32 == 31 {
                // A run that drifts positions by exactly the model error.
                for _ in 0..FENCE_EPSILON {
                    grams.push(i * 2);
                }
            }
        }
        let probes: Vec<u64> = (0..520u64).collect();
        assert_matches_oracle(&grams, probes);
    }

    /// Randomised clustered keys against the oracle, deterministic
    /// splitmix64 (self-contained: the suite must build without external
    /// crates).
    #[test]
    fn randomised_directories_match_binary_search() {
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        for round in 0..20 {
            let n = 1 + usize::try_from(next() % 2000).unwrap_or(0);
            let mut grams: Vec<u64> = (0..n)
                .map(|_| {
                    // Mix tight clusters with full-range outliers.
                    if next() % 4 == 0 {
                        next()
                    } else {
                        (1 << 40) + next() % 512
                    }
                })
                .collect();
            grams.sort_unstable();
            let mut probes: Vec<u64> = grams.clone();
            for _ in 0..64 {
                probes.push(next());
            }
            probes.push(0);
            probes.push(u64::MAX);
            assert_matches_oracle(&grams, probes);
            let _ = round;
        }
    }
}
