//! Immutable sorted segment files of the segmented ingest path.
//!
//! A segment is a small store file holding the same three relations as the
//! main file (forward, inverted, totals — see [`crate::ops`]) plus a
//! fourth **tombstone** relation `(treeId, 0) → 1` at slot
//! [`SLOT_TOMB`]: trees removed (or replaced by an empty index) while the
//! source memtable was live. A segment **owns** a tree id if it stores
//! data or a tombstone for it; during merged lookups the owning segment's
//! verdict shadows every older segment and the main file.
//!
//! Segments are written exactly once — bulk-built, fully synced, then
//! registered in the manifest — and never mutated afterwards. That
//! immutability is what makes them safe to share across reader snapshots
//! without any locking beyond the buffer pool's own shards.

use crate::btree::BTree;
use crate::buffer::{BufferPool, DEFAULT_CAPACITY};
use crate::fence::Fence;
use crate::filter::{self, GramFilter};
use crate::index_store::{META_KIND, META_P, META_Q};
use crate::ops::{SourceProbe, TotalsView, FORMAT_VERSION, FORMAT_VERSION_V3, SLOT_INV, SLOT_VERSION};
use crate::pager::{Pager, Result, StoreError};
use crate::vfs::Vfs;
use pqgram_core::{PQParams, TreeIndex};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

/// Kind marker of a segment file (slot [`META_KIND`]). Distinct from the
/// index-store and document-store kinds so a segment can never be opened
/// as a store (or vice versa) by accident.
pub(crate) const KIND_SEGMENT: u64 = 4;

/// Meta slot of the tombstone relation root: `(treeId, 0) → 1`. Slot 3 is
/// unused by the index-store relation layout (0 forward, 1–2 parameters,
/// 4 inverted, 5 totals, 6 version, 7 kind).
pub(crate) const SLOT_TOMB: usize = 3;

/// One immutable segment: its buffer pool, its manifest sequence number,
/// and the cached id sets that drive shadowing during merged reads.
pub(crate) struct Segment {
    pool: BufferPool,
    seq: u64,
    /// Every tree id this segment decides (data and tombstones), ascending.
    owned: Vec<u64>,
    /// The tombstoned subset of `owned`, ascending.
    tombstones: Vec<u64>,
    /// Learned fence over the immutable inverted directory: probes answer
    /// from its flat arrays instead of descending the directory B+-tree.
    fence: Fence,
    /// Gram membership filter, loaded once at open (segments are
    /// immutable). `None` on segments written before format v4 — the
    /// filter is advisory, so merged lookups simply probe such segments.
    filter: Option<GramFilter>,
    /// In-memory mirror of the totals relation, loaded once at open:
    /// merged lookups answer size-window checks and per-candidate totals
    /// reads from it without touching the segment's pages.
    totals: TotalsView,
}

impl Segment {
    /// Bulk-builds a segment at `path` from memtable entries and syncs it
    /// to durable storage. The caller registers the file in the manifest
    /// only after this returns — a crash before registration leaves an
    /// orphan that the next open sweeps away.
    // analyze: txn-exempt(segment bootstrap: writes a fresh file no reader has opened; the manifest references it only after the durability barrier at the end, and a failed build is discarded by the orphan sweep)
    pub(crate) fn build(
        vfs: Arc<dyn Vfs>,
        path: &Path,
        params: PQParams,
        seq: u64,
        entries: &BTreeMap<u64, Option<TreeIndex>>,
    ) -> Result<Segment> {
        // A stale file can only be a pre-crash orphan (sequence numbers are
        // reserved durably before any build starts, so live segments never
        // collide); replace it.
        if vfs.exists(path) {
            vfs.delete(path)?;
        }
        let pool = BufferPool::new(Pager::create_with(path, vfs)?, DEFAULT_CAPACITY);
        pool.set_meta(META_P, params.p() as u64)?;
        pool.set_meta(META_Q, params.q() as u64)?;
        pool.set_meta(META_KIND, KIND_SEGMENT)?;
        crate::ops::init_relations(&pool)?;
        let mut rows: Vec<((u64, u64), u32)> = Vec::new();
        let mut owned = Vec::with_capacity(entries.len());
        let mut tombstones = Vec::new();
        for (&t, entry) in entries {
            owned.push(t);
            match entry {
                Some(index) if index.total() > 0 => {
                    for (gram, count) in index.iter() {
                        rows.push(((t, gram), count));
                    }
                }
                _ => tombstones.push(t),
            }
        }
        rows.sort_unstable_by_key(|&(k, _)| k);
        crate::ops::bulk_load_relations(&pool, &rows, true)?;
        BTree::open(&pool, SLOT_TOMB)?.bulk_load(tombstones.iter().map(|&t| ((t, 0), 1)))?;
        pool.sync()?;
        let fence = Fence::build(&BTree::open_existing(&pool, SLOT_INV)?)?;
        let filter = filter::load(&pool)?;
        let totals = TotalsView::load(&pool)?;
        Ok(Segment {
            pool,
            seq,
            owned,
            tombstones,
            fence,
            filter,
            totals,
        })
    }

    /// Opens a live segment, checking the kind marker, format version, and
    /// parameters against the manifest's, and caches the owned-id sets.
    // analyze: entrypoint(recovery)
    pub(crate) fn open(
        vfs: Arc<dyn Vfs>,
        path: &Path,
        params: PQParams,
        seq: u64,
    ) -> Result<Segment> {
        let pool = BufferPool::new(Pager::open_with(path, vfs)?, DEFAULT_CAPACITY);
        if pool.meta(META_KIND) != KIND_SEGMENT {
            return Err(StoreError::Corrupt(
                "not a segment file (kind marker mismatch)".into(),
            ));
        }
        let version = pool.meta(SLOT_VERSION);
        // v3 segments (no gram filter) stay readable: segments are
        // immutable, so there is nothing to migrate — the filter is simply
        // absent and merged lookups probe the segment unconditionally.
        if version != FORMAT_VERSION && version != FORMAT_VERSION_V3 {
            return Err(StoreError::Corrupt(format!(
                "segment format version {version} (this build writes {FORMAT_VERSION})"
            )));
        }
        let (p, q) = (pool.meta(META_P) as usize, pool.meta(META_Q) as usize);
        if (p, q) != (params.p(), params.q()) {
            return Err(StoreError::Corrupt(format!(
                "segment parameters ({p}, {q}) disagree with the manifest's {params:?}"
            )));
        }
        let mut tombstones = Vec::new();
        let tomb = BTree::open_existing(&pool, SLOT_TOMB)?;
        tomb.for_each_range((0, 0), (u64::MAX, u64::MAX), |(t, _), _| {
            tombstones.push(t);
            true
        })?;
        let mut owned: Vec<u64> = crate::ops::tree_ids(&pool)?.iter().map(|id| id.0).collect();
        owned.extend(&tombstones);
        owned.sort_unstable();
        owned.dedup();
        let fence = Fence::build(&BTree::open_existing(&pool, SLOT_INV)?)?;
        let filter = filter::load(&pool)?;
        let totals = TotalsView::load(&pool)?;
        Ok(Segment {
            pool,
            seq,
            owned,
            tombstones,
            fence,
            filter,
            totals,
        })
    }

    pub(crate) fn seq(&self) -> u64 {
        self.seq
    }

    /// The probe surface merged lookups use for this segment: its fence,
    /// its gram filter (if the file carries one), and its totals mirror.
    pub(crate) fn source_probe(&self) -> SourceProbe<'_> {
        SourceProbe {
            fence: Some(&self.fence),
            filter: self.filter.as_ref(),
            totals: Some(&self.totals),
        }
    }

    /// Whether this segment's gram filter decoded and validated at open
    /// (always true for files this build writes; version-3 segments have
    /// none).
    pub(crate) fn has_filter(&self) -> bool {
        self.filter.is_some()
    }

    pub(crate) fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// The learned fence over this segment's inverted directory.
    pub(crate) fn fence(&self) -> &Fence {
        &self.fence
    }

    /// On-disk footprint of this segment's relations.
    pub(crate) fn relation_bytes(&self) -> Result<crate::ops::RelationBytes> {
        crate::ops::relation_bytes(&self.pool)
    }

    /// Every tree id this segment decides, ascending.
    pub(crate) fn owned(&self) -> &[u64] {
        &self.owned
    }

    /// True if this segment tombstones `id` (in-memory check).
    pub(crate) fn is_tombstoned(&self, id: u64) -> bool {
        self.tombstones.binary_search(&id).is_ok()
    }

    /// The segment's containment verdict on `id`: `None` if it does not
    /// own the tree, `Some(false)` for a tombstone, `Some(true)` for data.
    pub(crate) fn decides(&self, id: u64) -> Result<Option<bool>> {
        if self.is_tombstoned(id) {
            return Ok(Some(false));
        }
        Ok(crate::ops::contains_tree(&self.pool, pqgram_core::TreeId(id))?.then_some(true))
    }

    /// The segment's verdict on `id`: `None` if it does not own the tree,
    /// `Some(None)` for a tombstone, `Some(Some(index))` for stored data.
    pub(crate) fn entry(&self, params: PQParams, id: u64) -> Result<Option<Option<TreeIndex>>> {
        if self.tombstones.binary_search(&id).is_ok() {
            return Ok(Some(None));
        }
        Ok(crate::ops::tree_index(&self.pool, params, pqgram_core::TreeId(id))?.map(Some))
    }

    /// Verifies the relation invariants plus the tombstone relation's
    /// disjointness from the data rows.
    pub(crate) fn verify(&self) -> Result<crate::ops::StoreCheck> {
        let check = crate::ops::verify_relations(&self.pool)?;
        BTree::open_existing(&self.pool, SLOT_TOMB)?.verify()?;
        for &t in &self.tombstones {
            if crate::ops::contains_tree(&self.pool, pqgram_core::TreeId(t))? {
                return Err(StoreError::Corrupt(format!(
                    "segment {} both stores and tombstones tree {t}",
                    self.seq
                )));
            }
        }
        Ok(check)
    }
}
