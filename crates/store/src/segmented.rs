//! The segmented ingest engine: memtable → immutable segments →
//! compaction, under one manifest.
//!
//! A [`SegmentedIndexStore`] spreads one logical forest over several
//! files, all named off one `base` path:
//!
//! * `<base>` — the [`crate::manifest::Manifest`], the **only** file ever
//!   mutated in place (journal-protected transactions);
//! * `<base>.main.<g>` — the main file, a plain [`IndexStore`] holding
//!   the compacted bulk of the forest; immutable between compactions;
//! * `<base>.seg.<s>` — immutable [`crate::segment::Segment`] files, the
//!   flushed memtables, newest sequence number winning.
//!
//! **Write path.** Puts and removals buffer in a [`Memtable`]. A flush
//! durably reserves a sequence number (manifest transaction A), bulk-builds
//! and syncs the segment file, then registers it (manifest transaction B).
//! A crash anywhere lands on exactly one side of B: either the segment is
//! live, or it is an unreferenced orphan the next open deletes — the
//! sequence high-water mark committed by A guarantees the orphan can never
//! be confused with a future segment. Parallel ingest
//! ([`SegmentedIndexStore::put_trees_parallel`]) builds one segment per
//! worker concurrently (later chunks get higher sequence numbers, so
//! batch order decides duplicates exactly like sequential puts) and
//! registers them in one transaction.
//!
//! **Read path.** Lookups merge newest-to-oldest: memtable, then live
//! segments by descending sequence, then the main file. Each older source
//! runs the ordinary single-file plan of [`crate::ops`] with a *mask* of
//! every tree id a newer source owns — the distance arithmetic is the very
//! same code path as the single-file store, so merged results are
//! bit-identical to a store holding the merged forest.
//! [`SegmentedReader`] clones share a published snapshot pointer and see
//! each flush/compaction atomically.
//!
//! **Compaction.** Folds all live segments into a fresh
//! `<base>.main.<g+1>` (newest-wins, tombstones erased), then commits the
//! generation bump and the emptied segment list in one manifest
//! transaction; superseded files are deleted best-effort afterwards and
//! swept at the next open if a crash intervenes.

use crate::btree::BTree;
use crate::index_store::{check_params, IndexError, IndexStore};
use crate::manifest::Manifest;
use crate::memtable::Memtable;
use crate::ops::{LookupStats, StoreCheck, MAIN_SOURCE, SLOT_FWD};
use crate::segment::Segment;
use crate::vfs::{RealVfs, Vfs};
use parking_lot::Mutex;
use pqgram_core::join::overlap_distance;
use pqgram_core::plan::LookupPlanner;
use pqgram_core::topk::TopK;
use pqgram_core::maintain::{compute_index_delta, IndexDelta, UpdateStats};
use pqgram_core::{LookupHit, PQParams, TreeId, TreeIndex};
use pqgram_tree::{EditLog, FxHashSet, LabelTable, Tree};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

type Result<T> = std::result::Result<T, IndexError>;

fn delete_file(vfs: &Arc<dyn Vfs>, path: &Path) -> Result<()> {
    vfs.delete(path).map_err(crate::pager::StoreError::from)?;
    Ok(())
}

/// Source id used in [`LookupStats::by_source`] for the in-memory
/// memtable (it reads no disk rows, so its row count is always zero).
pub const MEMTABLE_SOURCE: u64 = u64::MAX - 1;

/// Memtable flush threshold: buffered distinct grams (a proxy for the
/// eventual segment size) beyond which a put triggers an automatic flush.
const DEFAULT_FLUSH_GRAMS: u64 = 64 * 1024;

/// Most sequence numbers the open-time orphan sweep will probe below the
/// manifest's high-water mark. The mark is raw disk state: without a cap a
/// corrupt (inflated) value would turn open into an unbounded existence
/// scan.
const SWEEP_PROBE_CAP: u64 = 64 * 1024;

fn suffixed(base: &Path, suffix: &str) -> PathBuf {
    let mut s = base.as_os_str().to_owned();
    s.push(suffix);
    PathBuf::from(s)
}

/// Path of main-file generation `gen` under `base`.
// analyze: taint-exempt(formats a file name; the value steers no memory)
pub(crate) fn main_path(base: &Path, gen: u64) -> PathBuf {
    suffixed(base, &format!(".main.{gen}"))
}

/// Path of segment sequence `seq` under `base`.
// analyze: taint-exempt(formats a file name; the value steers no memory)
pub(crate) fn seg_path(base: &Path, seq: u64) -> PathBuf {
    suffixed(base, &format!(".seg.{seq}"))
}

/// One immutable snapshot of the on-disk sources, newest segment first.
/// Published via an RCU pointer: writers swap in a fresh `Arc`, readers
/// clone the current one and keep querying it unperturbed.
pub(crate) struct SourceSet {
    /// Live segments, descending by sequence number (newest first).
    segments: Vec<Arc<Segment>>,
    /// The compacted main file, immutable between compactions.
    main: Arc<IndexStore>,
}

/// The single-writer handle of a segmented store.
pub struct SegmentedIndexStore {
    vfs: Arc<dyn Vfs>,
    base: PathBuf,
    params: PQParams,
    manifest: Manifest,
    memtable: Memtable,
    flush_grams: u64,
    /// Superseded files the compactor failed to unlink. They hold no live
    /// data (the manifest commit already excluded them) and the next
    /// open's orphan sweep retries; the count is surfaced so callers can
    /// observe leaked disk space instead of the error vanishing.
    deferred_cleanup: usize,
    // analyze: lock-class(manifest)
    published: Arc<Mutex<Arc<SourceSet>>>,
}

impl SegmentedIndexStore {
    /// Creates a new segmented store: `<base>.main.0` (empty) plus the
    /// manifest at `base`.
    pub fn create(base: &Path, params: PQParams) -> Result<SegmentedIndexStore> {
        Self::create_with(base, params, Arc::new(RealVfs))
    }

    /// [`SegmentedIndexStore::create`] on an explicit vfs (fault
    /// injection, tests). The main file is built and synced first, so a
    /// committed manifest always implies its generation-0 main exists; a
    /// crash in between leaves only a main-file orphan that a later
    /// `create` replaces.
    pub fn create_with(
        base: &Path,
        params: PQParams,
        vfs: Arc<dyn Vfs>,
    ) -> Result<SegmentedIndexStore> {
        let mp = main_path(base, 0);
        if vfs.exists(&mp) {
            delete_file(&vfs, &mp)?;
        }
        let main = IndexStore::bulk_create_rows_with(&mp, params, Arc::clone(&vfs), &[])?;
        let manifest = Manifest::create(base, params, Arc::clone(&vfs))?;
        let set = Arc::new(SourceSet {
            segments: Vec::new(),
            main: Arc::new(main),
        });
        Ok(SegmentedIndexStore {
            vfs,
            base: base.to_path_buf(),
            params,
            manifest,
            memtable: Memtable::new(),
            flush_grams: DEFAULT_FLUSH_GRAMS,
            deferred_cleanup: 0,
            published: Arc::new(Mutex::new(set)),
        })
    }

    /// Opens an existing segmented store (running crash recovery on the
    /// manifest, then sweeping every file the committed manifest state
    /// does not reference).
    pub fn open(base: &Path) -> Result<SegmentedIndexStore> {
        Self::open_with(base, Arc::new(RealVfs))
    }

    /// [`SegmentedIndexStore::open`] on an explicit vfs.
    ///
    /// The orphan sweep walks all reserved sequence numbers (`0..hwm`), so
    /// open cost grows with the store's lifetime flush count — O(hwm)
    /// existence probes. Acceptable for the forest sizes of the paper; a
    /// future format bump could add a low-water mark.
    // analyze: entrypoint(recovery)
    pub fn open_with(base: &Path, vfs: Arc<dyn Vfs>) -> Result<SegmentedIndexStore> {
        let manifest = Manifest::open(base, Arc::clone(&vfs))?;
        let params = manifest.params();
        let gen = manifest.generation();
        // A crashed compaction can leave the superseded main (gen - 1,
        // commit won) or an unfinished next main (gen + 1, commit lost).
        // `gen` is raw manifest state: saturate instead of overflowing and
        // let the `u64::MAX` guard skip both wrap artifacts.
        for g in [gen.wrapping_sub(1), gen.saturating_add(1)] {
            if g == gen || g == u64::MAX {
                continue;
            }
            let p = main_path(base, g);
            if vfs.exists(&p) {
                delete_file(&vfs, &p)?;
            }
        }
        let main = IndexStore::open_with(&main_path(base, gen), Arc::clone(&vfs))?;
        check_params(main.params(), params)?;
        let live = manifest.live_segments()?;
        let hwm = manifest.hwm();
        if live.iter().any(|&s| s >= hwm) {
            return Err(IndexError::Store(crate::pager::StoreError::Corrupt(
                "live segment sequence at or above the high-water mark".into(),
            )));
        }
        let live_set: FxHashSet<u64> = live.iter().copied().collect();
        // The sweep is opportunistic garbage collection, not a correctness
        // requirement: an orphan that survives it is wasted disk, nothing
        // more. Bounding the walk to the top window below `hwm` keeps a
        // corrupt (inflated) high-water mark from stalling open with
        // billions of existence probes; legitimate stores sit far below
        // the cap, and crash orphans are always recent reservations.
        for s in hwm.saturating_sub(SWEEP_PROBE_CAP)..hwm {
            if live_set.contains(&s) {
                continue;
            }
            let p = seg_path(base, s);
            if vfs.exists(&p) {
                delete_file(&vfs, &p)?;
            }
        }
        let mut segments = Vec::with_capacity(live.len());
        for &s in live.iter().rev() {
            let seg = Segment::open(Arc::clone(&vfs), &seg_path(base, s), params, s)?;
            segments.push(Arc::new(seg));
        }
        let set = Arc::new(SourceSet {
            segments,
            main: Arc::new(main),
        });
        Ok(SegmentedIndexStore {
            vfs,
            base: base.to_path_buf(),
            params,
            manifest,
            memtable: Memtable::new(),
            flush_grams: DEFAULT_FLUSH_GRAMS,
            deferred_cleanup: 0,
            published: Arc::new(Mutex::new(set)),
        })
    }

    /// The pq-gram parameters this store was created with.
    pub fn params(&self) -> PQParams {
        self.params
    }

    /// The current main-file generation (bumps once per compaction).
    pub fn generation(&self) -> u64 {
        self.manifest.generation()
    }

    /// Number of live segment files (excludes the memtable).
    pub fn segment_count(&self) -> usize {
        self.snapshot().segments.len()
    }

    /// Whether the main file *and* every live segment carry a loadable
    /// gram filter. Crash tests assert recovery always lands here —
    /// every committed source has a filter — not merely on correct
    /// answers. (Version-3 segments opened read-only are the one
    /// legitimate exception; this store never creates them.)
    #[doc(hidden)]
    pub fn has_gram_filters(&self) -> bool {
        let set = self.snapshot();
        set.main.has_gram_filter() && set.segments.iter().all(|s| s.has_filter())
    }

    /// Number of entries buffered in the memtable (tombstones included).
    pub fn pending_entries(&self) -> usize {
        self.memtable.len()
    }

    /// Number of superseded files compaction failed to unlink so far.
    /// They carry no live data and the next open's orphan sweep retries
    /// the deletes; a nonzero count means disk space is leaked until then.
    pub fn deferred_cleanup(&self) -> usize {
        self.deferred_cleanup
    }

    /// Overrides the automatic flush threshold (buffered distinct grams).
    /// Tests and benchmarks use this to force small or suppressed flushes.
    pub fn set_flush_threshold(&mut self, grams: u64) {
        self.flush_grams = grams;
    }

    fn snapshot(&self) -> Arc<SourceSet> {
        let set = Arc::clone(&*self.published.lock());
        set
    }

    fn publish(&self, set: SourceSet) {
        let next = Arc::new(set);
        *self.published.lock() = next;
    }

    /// Inserts (or replaces) the index of one tree. Buffered: durable at
    /// the next flush (explicit, threshold-triggered, or on
    /// [`SegmentedIndexStore::reader`]).
    pub fn put_tree(&mut self, id: TreeId, index: &TreeIndex) -> Result<()> {
        check_params(index.params(), self.params)?;
        self.memtable.put(id, index.clone());
        self.maybe_flush()
    }

    /// Inserts (or replaces) a whole batch of trees through the memtable.
    pub fn put_trees(&mut self, batch: &[(TreeId, TreeIndex)]) -> Result<()> {
        for (_, index) in batch {
            check_params(index.params(), self.params)?;
        }
        for (id, index) in batch {
            self.memtable.put(*id, index.clone());
        }
        self.maybe_flush()
    }

    /// Parallel ingest: flushes the memtable, splits `batch` into one
    /// contiguous chunk per worker, and bulk-builds the chunk segments
    /// concurrently. Later chunks receive higher sequence numbers, so a
    /// tree id appearing twice resolves to its later batch position —
    /// exactly the sequential-put semantics. All new segments are
    /// registered in one manifest transaction: a crash publishes either
    /// none or all of them.
    pub fn put_trees_parallel(
        &mut self,
        batch: &[(TreeId, TreeIndex)],
        threads: usize,
    ) -> Result<()> {
        for (_, index) in batch {
            check_params(index.params(), self.params)?;
        }
        if batch.is_empty() {
            return Ok(());
        }
        self.flush()?;
        let workers = threads.clamp(1, batch.len());
        let chunk = batch.len().div_ceil(workers);
        let chunks: Vec<(usize, &[(TreeId, TreeIndex)])> =
            batch.chunks(chunk).enumerate().collect();
        let first = self
            .manifest
            .reserve_seqs(u64::try_from(chunks.len()).unwrap_or(u64::MAX))?;
        let vfs = Arc::clone(&self.vfs);
        let base = self.base.clone();
        let params = self.params;
        let built = pqgram_core::par::map(&chunks, workers, |&(i, part)| {
            let seq = first + i as u64;
            let mut entries: BTreeMap<u64, Option<TreeIndex>> = BTreeMap::new();
            for (id, index) in part {
                entries.insert(id.0, (index.total() > 0).then(|| index.clone()));
            }
            Segment::build(
                Arc::clone(&vfs),
                &seg_path(&base, seq),
                params,
                seq,
                &entries,
            )
        });
        let mut fresh = Vec::with_capacity(built.len());
        for seg in built {
            fresh.push(Arc::new(seg?));
        }
        let seqs: Vec<u64> = fresh.iter().map(|s| s.seq()).collect();
        self.manifest.register_segments(&seqs)?;
        fresh.reverse(); // descending sequence: newest first
        let current = self.snapshot();
        let mut segments = fresh;
        segments.extend(current.segments.iter().cloned());
        self.publish(SourceSet {
            segments,
            main: Arc::clone(&current.main),
        });
        Ok(())
    }

    /// Removes a tree (a memtable tombstone). Returns `true` if the tree
    /// existed in the merged view.
    pub fn remove_tree(&mut self, id: TreeId) -> Result<bool> {
        let existed = self.contains_tree(id)?;
        if existed {
            self.memtable.remove(id);
        }
        Ok(existed)
    }

    /// True if `id` is stored in the merged view.
    pub fn contains_tree(&self, id: TreeId) -> Result<bool> {
        if let Some(entry) = self.memtable.get(id) {
            return Ok(entry.is_some());
        }
        let set = self.snapshot();
        contains_on_disk(&set, id)
    }

    /// Materializes the merged in-memory index of one stored tree.
    pub fn tree_index(&self, id: TreeId) -> Result<Option<TreeIndex>> {
        if let Some(entry) = self.memtable.get(id) {
            return Ok(entry.clone());
        }
        let set = self.snapshot();
        tree_index_on_disk(&set, self.params, id)
    }

    /// All stored tree ids of the merged view, ascending.
    pub fn tree_ids(&self) -> Result<Vec<TreeId>> {
        let set = self.snapshot();
        tree_ids_merged(&set, Some(&self.memtable))
    }

    /// Applies an incremental update delta (`I ← I \ I⁻ ⊎ I⁺`) to one
    /// tree: materializes the merged index, applies the delta in memory
    /// (first inconsistent removal rejects the whole delta, leaving the
    /// store unchanged), and buffers the result as a full replacement.
    pub fn apply_delta(&mut self, id: TreeId, delta: &IndexDelta) -> Result<()> {
        let mut index = self
            .tree_index(id)?
            .unwrap_or_else(|| TreeIndex::empty(self.params));
        for &g in &delta.removals {
            if !index.remove(g) {
                return Err(IndexError::InconsistentDelta(id, g));
            }
        }
        for &g in &delta.additions {
            index.add(g);
        }
        self.memtable.put(id, index);
        self.maybe_flush()
    }

    /// The full incremental pipeline: computes `I⁺`/`I⁻` from the edit
    /// log (Algorithm 1) and applies them through
    /// [`SegmentedIndexStore::apply_delta`].
    pub fn update_from_log(
        &mut self,
        id: TreeId,
        tree: &Tree,
        labels: &LabelTable,
        log: &EditLog,
    ) -> Result<UpdateStats> {
        if !self.contains_tree(id)? {
            return Err(IndexError::UnknownTree(id));
        }
        let (delta, mut stats) = compute_index_delta(tree, labels, log, self.params)?;
        let t = std::time::Instant::now();
        self.apply_delta(id, &delta)?;
        stats.apply = t.elapsed();
        Ok(stats)
    }

    /// The approximate lookup over the merged view, ascending by distance.
    pub fn lookup(&self, query: &TreeIndex, tau: f64) -> Result<Vec<LookupHit>> {
        Ok(self.lookup_with_stats(query, tau)?.0)
    }

    /// [`SegmentedIndexStore::lookup`] with per-source access counters.
    pub fn lookup_with_stats(
        &self,
        query: &TreeIndex,
        tau: f64,
    ) -> Result<(Vec<LookupHit>, LookupStats)> {
        self.lookup_with_stats_threads(query, tau, 1)
    }

    /// [`SegmentedIndexStore::lookup_with_stats`] with the verification
    /// phase of each on-disk source fanned out over `threads` workers
    /// (deterministic for any thread count).
    pub fn lookup_with_stats_threads(
        &self,
        query: &TreeIndex,
        tau: f64,
        threads: usize,
    ) -> Result<(Vec<LookupHit>, LookupStats)> {
        check_params(query.params(), self.params)?;
        let set = self.snapshot();
        lookup_merged(&set, Some(&self.memtable), query, tau, threads)
    }

    /// The `k` nearest stored trees of the merged view, ascending by
    /// `(distance, tree_id)` — exactly the first `k` of the
    /// distance-sorted exhaustive answer.
    pub fn lookup_top_k(&self, query: &TreeIndex, k: usize) -> Result<Vec<LookupHit>> {
        Ok(self.lookup_top_k_with_stats(query, k)?.0)
    }

    /// [`SegmentedIndexStore::lookup_top_k`] with per-source access
    /// counters.
    pub fn lookup_top_k_with_stats(
        &self,
        query: &TreeIndex,
        k: usize,
    ) -> Result<(Vec<LookupHit>, LookupStats)> {
        check_params(query.params(), self.params)?;
        let set = self.snapshot();
        lookup_top_k_merged(&set, Some(&self.memtable), query, k)
    }

    /// Flushes the memtable into one new immutable segment. No-op when
    /// empty. Crash-safe: sequence reservation and segment registration
    /// are separate manifest transactions around a fully synced build.
    pub fn flush(&mut self) -> Result<()> {
        if self.memtable.is_empty() {
            return Ok(());
        }
        let seq = self.manifest.reserve_seqs(1)?;
        let seg = Segment::build(
            Arc::clone(&self.vfs),
            &seg_path(&self.base, seq),
            self.params,
            seq,
            self.memtable.entries(),
        )?;
        self.manifest.register_segments(&[seq])?;
        self.memtable.clear();
        let current = self.snapshot();
        let mut segments = Vec::with_capacity(current.segments.len() + 1);
        segments.push(Arc::new(seg));
        segments.extend(current.segments.iter().cloned());
        self.publish(SourceSet {
            segments,
            main: Arc::clone(&current.main),
        });
        Ok(())
    }

    fn maybe_flush(&mut self) -> Result<()> {
        if self.memtable.grams() >= self.flush_grams {
            self.flush()?;
        }
        Ok(())
    }

    /// Folds the memtable and every live segment into a fresh main file
    /// (newest-wins; tombstones erased for good), commits the generation
    /// bump, and deletes the superseded files. Readers holding the old
    /// snapshot keep working — the deletes are POSIX-unlink style, the
    /// open pools stay valid until dropped.
    pub fn compact(&mut self) -> Result<()> {
        self.flush()?;
        let current = self.snapshot();
        if current.segments.is_empty() {
            return Ok(());
        }
        let mut claimed: FxHashSet<u64> = FxHashSet::default();
        let mut rows: Vec<((u64, u64), u32)> = Vec::new();
        for seg in &current.segments {
            // `claimed` holds ids of strictly newer segments only, so this
            // segment's own rows pass the filter.
            let fwd = BTree::open(seg.pool(), SLOT_FWD).map_err(IndexError::Store)?;
            fwd.for_each_range((0, 0), (u64::MAX, u64::MAX), |(t, g), c| {
                if !claimed.contains(&t) {
                    rows.push(((t, g), c));
                }
                true
            })
            .map_err(IndexError::Store)?;
            claimed.extend(seg.owned().iter().copied());
        }
        let main_fwd = BTree::open(current.main.pool(), SLOT_FWD).map_err(IndexError::Store)?;
        main_fwd
            .for_each_range((0, 0), (u64::MAX, u64::MAX), |(t, g), c| {
                if !claimed.contains(&t) {
                    rows.push(((t, g), c));
                }
                true
            })
            .map_err(IndexError::Store)?;
        rows.sort_unstable_by_key(|&(k, _)| k);
        let old_gen = self.manifest.generation();
        if old_gen >= u64::MAX - 1 {
            return Err(IndexError::Store(crate::pager::StoreError::Corrupt(
                "main-file generation space exhausted".into(),
            )));
        }
        let new_gen = old_gen + 1;
        let path = main_path(&self.base, new_gen);
        if self.vfs.exists(&path) {
            delete_file(&self.vfs, &path)?;
        }
        let new_main =
            IndexStore::bulk_create_rows_with(&path, self.params, Arc::clone(&self.vfs), &rows)?;
        self.manifest.commit_compaction(new_gen)?;
        // Best-effort cleanup; a crash or failure from here on only leaves
        // garbage the next open sweeps (the commit above already decided
        // the outcome), so failed unlinks are counted, not propagated.
        let old_main = main_path(&self.base, old_gen);
        if self.vfs.exists(&old_main) && self.vfs.delete(&old_main).is_err() {
            self.deferred_cleanup += 1;
        }
        for seg in &current.segments {
            let p = seg_path(&self.base, seg.seq());
            if self.vfs.exists(&p) && self.vfs.delete(&p).is_err() {
                self.deferred_cleanup += 1;
            }
        }
        self.publish(SourceSet {
            segments: Vec::new(),
            main: Arc::new(new_main),
        });
        Ok(())
    }

    /// A cloneable snapshot-following read handle. Flushes the memtable
    /// first so the reader sees everything written so far; afterwards the
    /// reader observes each flush/compaction atomically through the shared
    /// snapshot pointer while this writer keeps ingesting.
    pub fn reader(&mut self) -> Result<SegmentedReader> {
        self.flush()?;
        Ok(SegmentedReader {
            shared: Arc::clone(&self.published),
            params: self.params,
        })
    }

    /// Verifies every on-disk source (relation invariants, tombstone
    /// disjointness) plus the manifest/published-set agreement.
    pub fn verify(&self) -> Result<StoreCheck> {
        let set = self.snapshot();
        let check = set.main.verify()?;
        for seg in &set.segments {
            seg.verify().map_err(IndexError::Store)?;
        }
        let live = self.manifest.live_segments()?;
        let mut published: Vec<u64> = set.segments.iter().map(|s| s.seq()).collect();
        published.reverse();
        if live != published {
            return Err(IndexError::Store(crate::pager::StoreError::Corrupt(
                format!("manifest live segments {live:?} disagree with published {published:?}"),
            )));
        }
        let trees = tree_ids_merged(&set, Some(&self.memtable))?.len();
        Ok(StoreCheck {
            trees: u64::try_from(trees).unwrap_or(u64::MAX),
            ..check
        })
    }

    /// On-disk footprint of every live source, newest first: one
    /// `(source, bytes)` entry per segment (keyed by sequence number) and
    /// one for the main file (keyed by [`MAIN_SOURCE`]).
    pub fn relation_bytes(&self) -> Result<Vec<(u64, crate::ops::RelationBytes)>> {
        let set = self.snapshot();
        let mut out = Vec::with_capacity(set.segments.len() + 1);
        for seg in &set.segments {
            out.push((seg.seq(), seg.relation_bytes().map_err(IndexError::Store)?));
        }
        out.push((MAIN_SOURCE, set.main.relation_bytes()?));
        Ok(out)
    }
}

/// A cloneable, `Send + Sync` read handle over the published snapshot of a
/// [`SegmentedIndexStore`]. Each call re-reads the snapshot pointer, so a
/// reader observes every flush and compaction the writer publishes — but
/// any single lookup runs against one consistent snapshot.
#[derive(Clone)]
pub struct SegmentedReader {
    // analyze: lock-class(manifest)
    shared: Arc<Mutex<Arc<SourceSet>>>,
    params: PQParams,
}

// Compile-time proof the reader handle crosses threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SegmentedReader>()
};

impl SegmentedReader {
    /// The pq-gram parameters of the underlying store.
    pub fn params(&self) -> PQParams {
        self.params
    }

    fn snapshot(&self) -> Arc<SourceSet> {
        let set = Arc::clone(&*self.shared.lock());
        set
    }

    /// The approximate lookup over the current published snapshot.
    pub fn lookup(&self, query: &TreeIndex, tau: f64) -> Result<Vec<LookupHit>> {
        Ok(self.lookup_with_stats(query, tau)?.0)
    }

    /// [`SegmentedReader::lookup`] with per-source access counters.
    pub fn lookup_with_stats(
        &self,
        query: &TreeIndex,
        tau: f64,
    ) -> Result<(Vec<LookupHit>, LookupStats)> {
        self.lookup_with_stats_threads(query, tau, 1)
    }

    /// [`SegmentedReader::lookup_with_stats`] with parallel verification.
    pub fn lookup_with_stats_threads(
        &self,
        query: &TreeIndex,
        tau: f64,
        threads: usize,
    ) -> Result<(Vec<LookupHit>, LookupStats)> {
        check_params(query.params(), self.params)?;
        let set = self.snapshot();
        lookup_merged(&set, None, query, tau, threads)
    }

    /// The `k` nearest stored trees of the published snapshot, ascending
    /// by `(distance, tree_id)`.
    pub fn lookup_top_k(&self, query: &TreeIndex, k: usize) -> Result<Vec<LookupHit>> {
        Ok(self.lookup_top_k_with_stats(query, k)?.0)
    }

    /// [`SegmentedReader::lookup_top_k`] with per-source access counters.
    pub fn lookup_top_k_with_stats(
        &self,
        query: &TreeIndex,
        k: usize,
    ) -> Result<(Vec<LookupHit>, LookupStats)> {
        check_params(query.params(), self.params)?;
        let set = self.snapshot();
        lookup_top_k_merged(&set, None, query, k)
    }

    /// True if `id` is stored in the current published snapshot.
    pub fn contains_tree(&self, id: TreeId) -> Result<bool> {
        let set = self.snapshot();
        contains_on_disk(&set, id)
    }

    /// Materializes the index of one stored tree from the snapshot.
    pub fn tree_index(&self, id: TreeId) -> Result<Option<TreeIndex>> {
        let set = self.snapshot();
        tree_index_on_disk(&set, self.params, id)
    }

    /// All stored tree ids of the snapshot, ascending.
    pub fn tree_ids(&self) -> Result<Vec<TreeId>> {
        let set = self.snapshot();
        tree_ids_merged(&set, None)
    }
}

/// Shared memtable pass of the merged lookups: masks every
/// memtable-owned id and hands each buffered index (with its exact query
/// overlap) to `emit`. The memtable is in-memory, so it reads no disk
/// rows and probes no filter — but the callers feed its trees through the
/// same planner arithmetic as the on-disk sources, keeping merged results
/// bit-identical to a single-file store holding the merged forest.
fn memtable_pass(
    mt: &Memtable,
    query: &TreeIndex,
    skip: &mut FxHashSet<u64>,
    mut emit: impl FnMut(u64, u64, &TreeIndex),
) {
    let probe: Vec<(u64, u32)> = query.iter().collect();
    for (t, entry) in mt.iter() {
        skip.insert(t);
        let Some(index) = entry else { continue };
        let mut overlap = 0u64;
        for &(g, qc) in &probe {
            overlap += u64::from(qc.min(index.count(g)));
        }
        emit(t, overlap, index);
    }
}

/// The merged lookup: memtable (if any), then segments newest-first, then
/// the main file, each masked by everything newer. Runs the identical
/// per-source candidate-merge plan of [`crate::ops`] — every τ, no
/// exhaustive fallback — so the merged result is bit-identical to a
/// single-file store holding the merged forest.
fn lookup_merged(
    set: &SourceSet,
    memtable: Option<&Memtable>,
    query: &TreeIndex,
    tau: f64,
    threads: usize,
) -> Result<(Vec<LookupHit>, LookupStats)> {
    let planner = LookupPlanner::threshold(query.total(), tau);
    let mut skip: FxHashSet<u64> = FxHashSet::default();
    let mut hits: Vec<LookupHit> = Vec::new();
    let mut stats = crate::ops::merge_stats_base();
    if let Some(mt) = memtable {
        if !mt.is_empty() {
            memtable_pass(mt, query, &mut skip, |t, overlap, index| {
                // Mirror the candidate-merge plan: trees sharing a gram are
                // candidates (plus every tree when the bound admits the
                // zero-overlap distance), size-window survivors get
                // verified.
                if overlap == 0 && !planner.needs_zero_overlap() {
                    return;
                }
                stats.candidates += 1;
                if !planner.admits_total(index.total()) {
                    return;
                }
                stats.verified += 1;
                let distance = overlap_distance(overlap, query.total(), index.total());
                if planner.admits_distance(distance) {
                    hits.push(LookupHit {
                        tree_id: TreeId(t),
                        distance,
                    });
                }
            });
            stats.by_source.push((MEMTABLE_SOURCE, 0));
        }
    }
    for seg in &set.segments {
        let before = stats.rows_read;
        crate::ops::lookup_source_threshold(
            seg.pool(),
            &seg.source_probe(),
            query,
            tau,
            threads,
            &skip,
            true,
            &mut stats,
            &mut hits,
        )?;
        stats.by_source.push((seg.seq(), stats.rows_read - before));
        skip.extend(seg.owned().iter().copied());
    }
    let before = stats.rows_read;
    crate::ops::lookup_source_threshold(
        set.main.pool(),
        &set.main.source_probe(),
        query,
        tau,
        threads,
        &skip,
        true,
        &mut stats,
        &mut hits,
    )?;
    stats.by_source.push((MAIN_SOURCE, stats.rows_read - before));
    crate::ops::sort_hits(&mut hits);
    stats.hits = hits.len();
    Ok((hits, stats))
}

/// The merged top-k lookup: the same newest-to-oldest masked walk as
/// [`lookup_merged`], but over one shared max-heap and one planner whose
/// bound tightens as the heap fills — sources probed later benefit from
/// every result a newer source already produced.
fn lookup_top_k_merged(
    set: &SourceSet,
    memtable: Option<&Memtable>,
    query: &TreeIndex,
    k: usize,
) -> Result<(Vec<LookupHit>, LookupStats)> {
    let mut planner = LookupPlanner::nearest(query.total());
    let mut topk = TopK::new(k);
    let mut skip: FxHashSet<u64> = FxHashSet::default();
    let mut stats = crate::ops::merge_stats_base();
    if k == 0 {
        return Ok((Vec::new(), stats));
    }
    if let Some(mt) = memtable {
        if !mt.is_empty() {
            memtable_pass(mt, query, &mut skip, |t, overlap, index| {
                stats.candidates += 1;
                stats.verified += 1;
                let distance = overlap_distance(overlap, query.total(), index.total());
                topk.offer(TreeId(t), distance);
            });
            stats.by_source.push((MEMTABLE_SOURCE, 0));
        }
    }
    for seg in &set.segments {
        let before = stats.rows_read;
        crate::ops::lookup_source_top_k(
            seg.pool(),
            &seg.source_probe(),
            query,
            &mut planner,
            &mut topk,
            &skip,
            &mut stats,
        )?;
        stats.by_source.push((seg.seq(), stats.rows_read - before));
        skip.extend(seg.owned().iter().copied());
    }
    let before = stats.rows_read;
    crate::ops::lookup_source_top_k(
        set.main.pool(),
        &set.main.source_probe(),
        query,
        &mut planner,
        &mut topk,
        &skip,
        &mut stats,
    )?;
    stats.by_source.push((MAIN_SOURCE, stats.rows_read - before));
    let hits = topk.into_sorted_hits();
    stats.hits = hits.len();
    Ok((hits, stats))
}

fn contains_on_disk(set: &SourceSet, id: TreeId) -> Result<bool> {
    for seg in &set.segments {
        if let Some(verdict) = seg.decides(id.0).map_err(IndexError::Store)? {
            return Ok(verdict);
        }
    }
    Ok(crate::ops::contains_tree(set.main.pool(), id)?)
}

fn tree_index_on_disk(set: &SourceSet, params: PQParams, id: TreeId) -> Result<Option<TreeIndex>> {
    for seg in &set.segments {
        if let Some(verdict) = seg.entry(params, id.0).map_err(IndexError::Store)? {
            return Ok(verdict);
        }
    }
    Ok(crate::ops::tree_index(set.main.pool(), params, id)?)
}

fn tree_ids_merged(set: &SourceSet, memtable: Option<&Memtable>) -> Result<Vec<TreeId>> {
    let mut claimed: FxHashSet<u64> = FxHashSet::default();
    let mut ids: Vec<u64> = Vec::new();
    if let Some(mt) = memtable {
        for (t, entry) in mt.iter() {
            claimed.insert(t);
            if entry.is_some() {
                ids.push(t);
            }
        }
    }
    for seg in &set.segments {
        for &t in seg.owned() {
            if claimed.insert(t) && !seg.is_tombstoned(t) {
                ids.push(t);
            }
        }
    }
    for id in crate::ops::tree_ids(set.main.pool())? {
        if !claimed.contains(&id.0) {
            ids.push(id.0);
        }
    }
    ids.sort_unstable();
    Ok(ids.into_iter().map(TreeId).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::FaultVfs;
    use pqgram_core::build_index;
    use pqgram_tree::generate::{random_tree, RandomTreeConfig};
    use pqgram_tree::{record_script, ScriptConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    type TestResult = std::result::Result<(), Box<dyn std::error::Error>>;

    fn mem_vfs() -> Arc<dyn Vfs> {
        Arc::new(FaultVfs::new())
    }

    fn make_indexes(seed: u64, n: usize, params: PQParams) -> Vec<TreeIndex> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut lt = LabelTable::new();
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let t = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(60, 5));
            out.push(build_index(&t, &lt, params));
        }
        out
    }

    /// Builds a segmented store whose forest is spread over all four source
    /// kinds (main, two segments, memtable) plus the equivalent single-file
    /// store, and returns both.
    fn spread_store(
        v: &Arc<dyn Vfs>,
        params: PQParams,
        idxs: &[TreeIndex],
    ) -> TestResult2<(SegmentedIndexStore, IndexStore)> {
        let mut seg =
            SegmentedIndexStore::create_with(Path::new("/seg/db"), params, Arc::clone(v))?;
        seg.set_flush_threshold(u64::MAX);
        let cut = idxs.len() / 3;
        for (i, idx) in idxs.iter().enumerate() {
            seg.put_tree(TreeId(i as u64), idx)?;
            if i + 1 == cut {
                seg.compact()?; // these land in the main file
            } else if (i + 1) % 5 == 0 && i + 1 > cut && i + 2 < idxs.len() {
                seg.flush()?; // these land in segments
            }
            // the tail stays in the memtable
        }
        let mut single = IndexStore::create_with(Path::new("/ref/db"), params, Arc::clone(v))?;
        for (i, idx) in idxs.iter().enumerate() {
            single.put_tree(TreeId(i as u64), idx)?;
        }
        Ok((seg, single))
    }

    type TestResult2<T> = std::result::Result<T, Box<dyn std::error::Error>>;

    #[test]
    fn merged_reads_equal_single_file() -> TestResult {
        let params = PQParams::default();
        let v = mem_vfs();
        let idxs = make_indexes(11, 24, params);
        let (seg, single) = spread_store(&v, params, &idxs)?;
        assert!(
            seg.segment_count() >= 2,
            "spread left {} segments",
            seg.segment_count()
        );
        assert!(seg.pending_entries() > 0, "spread left an empty memtable");
        assert_eq!(seg.tree_ids()?, single.tree_ids()?);
        for i in 0..idxs.len() as u64 {
            assert_eq!(
                seg.contains_tree(TreeId(i))?,
                single.contains_tree(TreeId(i))?
            );
            assert_eq!(seg.tree_index(TreeId(i))?, single.tree_index(TreeId(i))?);
        }
        for tau in [0.3, 0.7, 1.0, 1.5] {
            for q in idxs.iter().step_by(7) {
                let (mh, ms) = seg.lookup_with_stats(q, tau)?;
                let (sh, ss) = single.lookup_with_stats(q, tau)?;
                assert_eq!(mh, sh, "tau {tau}");
                assert_eq!(ms.used_inverted, ss.used_inverted);
                assert_eq!(ms.hits, ss.hits);
            }
        }
        seg.verify()?;
        Ok(())
    }

    #[test]
    fn newer_sources_shadow_older_ones() -> TestResult {
        let params = PQParams::default();
        let v = mem_vfs();
        let idxs = make_indexes(12, 3, params);
        let mut seg =
            SegmentedIndexStore::create_with(Path::new("/shadow/db"), params, Arc::clone(&v))?;
        seg.set_flush_threshold(u64::MAX);
        seg.put_tree(TreeId(1), &idxs[0])?;
        seg.compact()?; // v1 lives in the main file
        seg.put_tree(TreeId(1), &idxs[1])?;
        seg.flush()?; // v2 lives in a segment
        assert_eq!(seg.tree_index(TreeId(1))?.as_ref(), Some(&idxs[1]));
        seg.put_tree(TreeId(1), &idxs[2])?; // v3 in the memtable
        assert_eq!(seg.tree_index(TreeId(1))?.as_ref(), Some(&idxs[2]));
        let hits = seg.lookup(&idxs[2], 0.95)?;
        assert!(hits
            .iter()
            .all(|h| h.tree_id != TreeId(1) || h.distance == 0.0));
        // Tombstone in the memtable shadows both older copies.
        assert!(seg.remove_tree(TreeId(1))?);
        assert!(!seg.contains_tree(TreeId(1))?);
        assert!(seg.lookup(&idxs[2], 1.01)?.is_empty());
        seg.flush()?; // tombstone now in a segment
        assert!(!seg.contains_tree(TreeId(1))?);
        assert_eq!(seg.tree_ids()?, Vec::<TreeId>::new());
        seg.compact()?; // tombstone erased for good
        assert_eq!(seg.segment_count(), 0);
        assert!(!seg.contains_tree(TreeId(1))?);
        seg.verify()?;
        Ok(())
    }

    #[test]
    fn reopen_recovers_all_sources() -> TestResult {
        let params = PQParams::new(2, 4);
        let v = mem_vfs();
        let idxs = make_indexes(13, 9, params);
        let base = Path::new("/reopen/db");
        {
            let mut seg = SegmentedIndexStore::create_with(base, params, Arc::clone(&v))?;
            seg.set_flush_threshold(u64::MAX);
            for (i, idx) in idxs.iter().enumerate().take(4) {
                seg.put_tree(TreeId(i as u64), idx)?;
            }
            seg.compact()?;
            for (i, idx) in idxs.iter().enumerate().skip(4).take(3) {
                seg.put_tree(TreeId(i as u64), idx)?;
            }
            seg.flush()?;
            for (i, idx) in idxs.iter().enumerate().skip(7) {
                seg.put_tree(TreeId(i as u64), idx)?;
            }
            seg.flush()?;
        }
        let seg = SegmentedIndexStore::open_with(base, Arc::clone(&v))?;
        assert_eq!(seg.params(), params);
        assert_eq!(seg.segment_count(), 2);
        assert_eq!(seg.generation(), 1);
        for (i, idx) in idxs.iter().enumerate() {
            assert_eq!(seg.tree_index(TreeId(i as u64))?.as_ref(), Some(idx));
        }
        seg.verify()?;
        Ok(())
    }

    #[test]
    fn parallel_ingest_matches_sequential_puts() -> TestResult {
        let params = PQParams::default();
        let v = mem_vfs();
        let idxs = make_indexes(14, 13, params);
        // Duplicate id 3 at the end: the later batch position must win,
        // exactly like sequential puts.
        let mut batch: Vec<(TreeId, TreeIndex)> = idxs
            .iter()
            .enumerate()
            .map(|(i, idx)| (TreeId(i as u64 % 12), idx.clone()))
            .collect();
        batch.push((TreeId(3), idxs[0].clone()));
        let mut par_store =
            SegmentedIndexStore::create_with(Path::new("/par/db"), params, Arc::clone(&v))?;
        par_store.put_trees_parallel(&batch, 4)?;
        assert!(par_store.segment_count() >= 2);
        let mut seq_store =
            SegmentedIndexStore::create_with(Path::new("/seq/db"), params, Arc::clone(&v))?;
        for (id, idx) in &batch {
            seq_store.put_tree(*id, idx)?;
        }
        assert_eq!(par_store.tree_ids()?, seq_store.tree_ids()?);
        for id in par_store.tree_ids()? {
            assert_eq!(par_store.tree_index(id)?, seq_store.tree_index(id)?);
        }
        for q in idxs.iter().step_by(5) {
            assert_eq!(par_store.lookup(q, 0.8)?, seq_store.lookup(q, 0.8)?);
        }
        par_store.verify()?;
        Ok(())
    }

    #[test]
    fn reader_follows_published_snapshots() -> TestResult {
        let params = PQParams::default();
        let v = mem_vfs();
        let idxs = make_indexes(15, 6, params);
        let mut seg =
            SegmentedIndexStore::create_with(Path::new("/rdr/db"), params, Arc::clone(&v))?;
        seg.set_flush_threshold(u64::MAX);
        for (i, idx) in idxs.iter().enumerate().take(5) {
            seg.put_tree(TreeId(i as u64), idx)?;
        }
        let reader = seg.reader()?;
        assert_eq!(seg.pending_entries(), 0, "reader() must flush");
        let from_thread = std::thread::scope(|s| {
            let r = reader.clone();
            let q = &idxs[0];
            s.spawn(move || r.lookup(q, 0.9)).join()
        });
        let hits = match from_thread {
            Ok(h) => h?,
            Err(_) => return Err("reader thread panicked".into()),
        };
        assert_eq!(hits, seg.lookup(&idxs[0], 0.9)?);
        // The reader observes the writer's next flush and compaction.
        seg.put_tree(TreeId(5), &idxs[5])?;
        assert!(
            !reader.contains_tree(TreeId(5))?,
            "memtable is writer-private"
        );
        seg.flush()?;
        assert!(reader.contains_tree(TreeId(5))?);
        seg.compact()?;
        assert!(reader.contains_tree(TreeId(5))?);
        assert_eq!(reader.tree_ids()?, seg.tree_ids()?);
        Ok(())
    }

    #[test]
    fn stats_attribute_rows_per_source() -> TestResult {
        let params = PQParams::default();
        let v = mem_vfs();
        let idxs = make_indexes(16, 24, params);
        let (seg, single) = spread_store(&v, params, &idxs)?;
        let (_, stats) = seg.lookup_with_stats(&idxs[0], 1.0)?;
        let sources: Vec<u64> = stats.by_source.iter().map(|&(s, _)| s).collect();
        assert_eq!(sources.first(), Some(&MEMTABLE_SOURCE));
        assert_eq!(sources.last(), Some(&MAIN_SOURCE));
        assert!(
            sources.len() >= 4,
            "expected >= 2 segment entries: {sources:?}"
        );
        let sum: u64 = stats.by_source.iter().map(|&(_, r)| r).sum();
        assert_eq!(sum, stats.rows_read);
        let (_, sstats) = single.lookup_with_stats(&idxs[0], 1.0)?;
        assert_eq!(sstats.by_source, vec![(MAIN_SOURCE, sstats.rows_read)]);
        Ok(())
    }

    #[test]
    fn incremental_update_from_log_matches_rebuild() -> TestResult {
        let params = PQParams::default();
        let v = mem_vfs();
        let mut rng = StdRng::seed_from_u64(17);
        let mut lt = LabelTable::new();
        let mut tree = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(300, 6));
        let mut seg =
            SegmentedIndexStore::create_with(Path::new("/upd/db"), params, Arc::clone(&v))?;
        seg.set_flush_threshold(u64::MAX);
        seg.put_tree(TreeId(0), &build_index(&tree, &lt, params))?;
        seg.compact()?; // the old index lives in the main file
        let alphabet: Vec<_> = lt.iter().map(|(s, _)| s).collect();
        let (log, _) = record_script(&mut rng, &mut tree, &ScriptConfig::new(40, alphabet));
        let stats = seg.update_from_log(TreeId(0), &tree, &lt, &log)?;
        assert_eq!(stats.ops, 40);
        let stored = seg.tree_index(TreeId(0))?.ok_or("tree 0 missing")?;
        assert_eq!(stored, build_index(&tree, &lt, params));
        let Err(err) = seg.update_from_log(TreeId(9), &tree, &lt, &log) else {
            return Err("update of an unknown tree must fail".into());
        };
        assert!(matches!(err, IndexError::UnknownTree(TreeId(9))));
        Ok(())
    }
}
