//! Virtual file system — the storage engine's only gateway to the disk.
//!
//! Every byte the engine reads or writes crosses the [`Vfs`]/[`VfsFile`]
//! seam: the [`crate::pager`] and [`crate::journal`] hold `Box<dyn VfsFile>`
//! handles obtained from an `Arc<dyn Vfs>`, and never touch `std::fs`
//! directly (an xtask lint rule enforces this for the whole crate). Two
//! implementations exist:
//!
//! * [`RealVfs`] — the production pass-through to `std::fs`; the default of
//!   [`crate::pager::Pager::create`]/[`crate::pager::Pager::open`], with no
//!   behavioral change over calling the OS directly;
//! * [`FaultVfs`] — a deterministic fault injector for crash-recovery
//!   tests: it can halt the simulated machine at any chosen mutating event
//!   (leaving a torn half-written buffer behind), fail or *lie* on a chosen
//!   sync, and fail individual reads or writes with injected `io::Error`s.
//!
//! # The crash-point model
//!
//! `FaultVfs` keeps two byte images per file: `current` (what the process
//! sees) and `durable` (what an honest `sync` has pinned down). Every
//! *mutating* event — a write, sync, truncate, create, or delete — advances
//! a global clock. Arming [`FaultVfs::crash_at`] makes the event at that
//! clock tick fail and halts the file system: all subsequent operations
//! error, exactly like a machine that lost power. A crashing write first
//! applies the front half of its buffer, modelling a torn sector.
//!
//! [`FaultVfs::surviving`] then forks the state a post-crash reboot would
//! find, resolved per [`CrashMode`]: keep everything written (a kernel that
//! flushed its caches), keep only synced bytes (volatile write caches), or
//! drop unsynced bytes for a chosen file-name suffix only (asymmetric loss,
//! which catches write/sync ordering bugs between the data file and its
//! journal). Enumerating `crash_at(n, …)` for every `n` up to
//! [`FaultVfs::io_events`] visits every sync boundary of a workload.
//!
//! Deliberately not modelled: directory-entry durability. Renames and
//! deletes are atomic and immediately durable here, so a crash can never
//! resurrect a deleted journal.

use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// An open file handle addressed by absolute byte offsets (no cursor).
pub trait VfsFile: Send {
    /// Reads up to `buf.len()` bytes at `offset`; returns the count read
    /// (`0` at end of file).
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<usize>;

    /// Writes all of `buf` at `offset`, extending the file if needed.
    fn write_all_at(&mut self, offset: u64, buf: &[u8]) -> io::Result<()>;

    /// Makes previously written bytes durable (`fdatasync` semantics).
    fn sync(&mut self) -> io::Result<()>;

    /// Sets the file length, zero-filling on growth.
    fn truncate(&mut self, size: u64) -> io::Result<()>;

    /// Current file size in bytes.
    fn size(&mut self) -> io::Result<u64>;

    /// Fills `buf` exactly from `offset`, failing with `UnexpectedEof` on a
    /// short read.
    fn read_exact_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        let mut filled = 0usize;
        while filled < buf.len() {
            let Some(rest) = buf.get_mut(filled..) else {
                return Ok(());
            };
            match self.read_at(offset.saturating_add(len_u64(filled)), rest)? {
                0 => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "short read past end of file",
                    ))
                }
                n => filled += n,
            }
        }
        Ok(())
    }
}

/// Factory for [`VfsFile`] handles. An `Arc<dyn Vfs>` is threaded through
/// the pager and journal so that all disk I/O crosses one mockable seam.
pub trait Vfs: Send + Sync {
    /// Creates the file; fails if it already exists.
    fn create_new(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;

    /// Opens or creates the file, truncating it to zero length.
    fn create_truncate(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;

    /// Opens an existing file read/write.
    fn open(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;

    /// True if a file exists at `path`.
    fn exists(&self, path: &Path) -> bool;

    /// Deletes the file at `path`.
    fn delete(&self, path: &Path) -> io::Result<()>;
}

/// A `usize` byte count as `u64` (cannot overflow on supported targets).
pub(crate) fn len_u64(n: usize) -> u64 {
    u64::try_from(n).unwrap_or(u64::MAX)
}

/// A `u64` file offset as a buffer index (saturating; faulted files are
/// in-memory, so a saturated index simply reads past the end).
fn index_of(offset: u64) -> usize {
    usize::try_from(offset).unwrap_or(usize::MAX)
}

// ---------------------------------------------------------------------------
// RealVfs
// ---------------------------------------------------------------------------

/// The production VFS: a thin pass-through to `std::fs`.
#[derive(Clone, Copy, Debug, Default)]
pub struct RealVfs;

struct RealFile {
    file: File,
}

impl VfsFile for RealFile {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.read(buf)
    }

    fn write_all_at(&mut self, offset: u64, buf: &[u8]) -> io::Result<()> {
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.write_all(buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    fn truncate(&mut self, size: u64) -> io::Result<()> {
        self.file.set_len(size)
    }

    fn size(&mut self) -> io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }
}

impl Vfs for RealVfs {
    fn create_new(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = OpenOptions::new()
            .create_new(true)
            .read(true)
            .write(true)
            .open(path)?;
        Ok(Box::new(RealFile { file }))
    }

    fn create_truncate(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(path)?;
        Ok(Box::new(RealFile { file }))
    }

    fn open(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        Ok(Box::new(RealFile { file }))
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn delete(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
}

// ---------------------------------------------------------------------------
// FaultVfs
// ---------------------------------------------------------------------------

/// What survives a simulated crash (see the module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CrashMode {
    /// Every completed write survives, synced or not (plus the torn prefix
    /// of the in-flight write): a kernel that had flushed its caches.
    KeepUnsynced,
    /// Only bytes pinned by an honest `sync` survive, for every file: power
    /// loss with volatile write caches.
    DropUnsynced,
    /// Like [`CrashMode::DropUnsynced`], but only for files whose name ends
    /// with this suffix; other files keep unsynced writes. The asymmetry
    /// catches ordering bugs (e.g. a data write racing its journal's sync).
    DropUnsyncedMatching(String),
}

#[derive(Clone, Default)]
struct Images {
    durable: Vec<u8>,
    current: Vec<u8>,
}

#[derive(Default)]
struct FaultState {
    files: BTreeMap<PathBuf, Images>,
    /// Global clock of mutating events (writes, syncs, truncates, creates,
    /// deletes).
    clock: u64,
    crash: Option<(u64, CrashMode)>,
    crashed: bool,
    lying_syncs: bool,
    syncs_seen: u64,
    fail_syncs: BTreeSet<u64>,
    reads_seen: u64,
    fail_reads: BTreeSet<u64>,
    writes_seen: u64,
    fail_writes: BTreeSet<u64>,
}

impl FaultState {
    fn check_alive(&self) -> io::Result<()> {
        if self.crashed {
            return Err(io::Error::other("simulated crash: file system halted"));
        }
        Ok(())
    }

    /// Advances the event clock; true when the armed crash fires now.
    fn tick(&mut self) -> bool {
        let at = self.clock;
        self.clock += 1;
        if let Some((event, _)) = &self.crash {
            if *event == at {
                self.crashed = true;
                return true;
            }
        }
        false
    }

    fn images(&mut self, path: &Path) -> io::Result<&mut Images> {
        self.files.get_mut(path).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("{} was deleted", path.display()),
            )
        })
    }
}

fn injected(what: &str) -> io::Error {
    io::Error::other(format!("injected fault: {what}"))
}

fn write_into(dest: &mut Vec<u8>, offset: u64, data: &[u8]) {
    let start = index_of(offset);
    let end = start.saturating_add(data.len());
    if dest.len() < end {
        dest.resize(end, 0);
    }
    let tail = dest.get_mut(start..end).unwrap_or(&mut []);
    for (d, s) in tail.iter_mut().zip(data.iter()) {
        *d = *s;
    }
}

/// Deterministic fault-injecting VFS for crash-recovery tests.
///
/// Clones share state: hand one clone to the store and keep another to arm
/// faults and inspect the aftermath. See the module docs for the crash-point
/// model and `crates/store/tests/crash.rs` for the exhaustive enumeration.
#[derive(Clone, Default)]
pub struct FaultVfs {
    // analyze: lock-class(vfs-state)
    state: Arc<Mutex<FaultState>>,
}

impl FaultVfs {
    /// A fresh injector with no faults armed.
    pub fn new() -> FaultVfs {
        FaultVfs::default()
    }

    /// Arms a crash at mutating event `event` (0-based on the clock
    /// reported by [`FaultVfs::io_events`]). The event itself fails and
    /// every later operation errors.
    pub fn crash_at(&self, event: u64, mode: CrashMode) {
        self.state.lock().crash = Some((event, mode));
    }

    /// Number of mutating events processed so far.
    pub fn io_events(&self) -> u64 {
        self.state.lock().clock
    }

    /// True once an armed crash has fired.
    pub fn crashed(&self) -> bool {
        self.state.lock().crashed
    }

    /// Makes the `nth` sync (0-based) fail with an injected error. The sync
    /// makes nothing durable; the file system keeps running.
    pub fn fail_sync(&self, nth: u64) {
        self.state.lock().fail_syncs.insert(nth);
    }

    /// Makes every sync report success without pinning anything durable —
    /// a drive that acknowledges flushes it does not perform.
    pub fn lie_on_syncs(&self) {
        self.state.lock().lying_syncs = true;
    }

    /// Makes the `nth` read (0-based) fail with an injected error.
    pub fn fail_read(&self, nth: u64) {
        self.state.lock().fail_reads.insert(nth);
    }

    /// Makes the `nth` write (0-based) fail with an injected error; the
    /// failed write has no effect on the file.
    pub fn fail_write(&self, nth: u64) {
        self.state.lock().fail_writes.insert(nth);
    }

    /// Forks the file system a post-crash reboot would find: every file
    /// reduced to its surviving bytes per the armed [`CrashMode`] (or kept
    /// as-is after a clean run). The fork has no faults armed.
    pub fn surviving(&self) -> FaultVfs {
        let state = self.state.lock();
        let mode = match &state.crash {
            Some((_, mode)) if state.crashed => mode.clone(),
            _ => CrashMode::KeepUnsynced,
        };
        let files = state
            .files
            .iter()
            .map(|(path, images)| {
                let keep_current = match &mode {
                    CrashMode::KeepUnsynced => true,
                    CrashMode::DropUnsynced => false,
                    CrashMode::DropUnsyncedMatching(suffix) => !path
                        .as_os_str()
                        .to_string_lossy()
                        .ends_with(suffix.as_str()),
                };
                let bytes = if keep_current {
                    images.current.clone()
                } else {
                    images.durable.clone()
                };
                (
                    path.clone(),
                    Images {
                        durable: bytes.clone(),
                        current: bytes,
                    },
                )
            })
            .collect();
        FaultVfs {
            state: Arc::new(Mutex::new(FaultState {
                files,
                ..Default::default()
            })),
        }
    }
}

struct FaultFile {
    // analyze: lock-class(vfs-state)
    state: Arc<Mutex<FaultState>>,
    path: PathBuf,
}

impl VfsFile for FaultFile {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        let mut state = self.state.lock();
        state.check_alive()?;
        let nth = state.reads_seen;
        state.reads_seen += 1;
        if state.fail_reads.contains(&nth) {
            return Err(injected("read"));
        }
        let images = state.images(&self.path)?;
        let start = index_of(offset).min(images.current.len());
        let avail = images.current.get(start..).unwrap_or(&[]);
        let mut copied = 0usize;
        for (d, s) in buf.iter_mut().zip(avail.iter()) {
            *d = *s;
            copied += 1;
        }
        Ok(copied)
    }

    fn write_all_at(&mut self, offset: u64, buf: &[u8]) -> io::Result<()> {
        let mut state = self.state.lock();
        state.check_alive()?;
        let nth = state.writes_seen;
        state.writes_seen += 1;
        if state.fail_writes.contains(&nth) {
            return Err(injected("write"));
        }
        if state.tick() {
            // Crash mid-write: a torn sector — only the front half of the
            // buffer reaches the file.
            let torn = buf.get(..buf.len() / 2).unwrap_or(&[]);
            let images = state.images(&self.path)?;
            write_into(&mut images.current, offset, torn);
            return Err(io::Error::other("simulated crash during write"));
        }
        let images = state.images(&self.path)?;
        write_into(&mut images.current, offset, buf);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        let mut state = self.state.lock();
        state.check_alive()?;
        let nth = state.syncs_seen;
        state.syncs_seen += 1;
        if state.fail_syncs.contains(&nth) {
            return Err(injected("sync"));
        }
        if state.tick() {
            return Err(io::Error::other("simulated crash during sync"));
        }
        if !state.lying_syncs {
            let images = state.images(&self.path)?;
            images.durable = images.current.clone();
        }
        Ok(())
    }

    fn truncate(&mut self, size: u64) -> io::Result<()> {
        let mut state = self.state.lock();
        state.check_alive()?;
        if state.tick() {
            return Err(io::Error::other("simulated crash during truncate"));
        }
        let images = state.images(&self.path)?;
        images.current.resize(index_of(size), 0);
        Ok(())
    }

    fn size(&mut self) -> io::Result<u64> {
        let mut state = self.state.lock();
        state.check_alive()?;
        let images = state.images(&self.path)?;
        Ok(len_u64(images.current.len()))
    }
}

impl Vfs for FaultVfs {
    fn create_new(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let mut state = self.state.lock();
        state.check_alive()?;
        if state.files.contains_key(path) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("{} already exists", path.display()),
            ));
        }
        if state.tick() {
            return Err(io::Error::other("simulated crash during create"));
        }
        state.files.insert(path.to_owned(), Images::default());
        Ok(Box::new(FaultFile {
            state: Arc::clone(&self.state),
            path: path.to_owned(),
        }))
    }

    fn create_truncate(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let mut state = self.state.lock();
        state.check_alive()?;
        if state.tick() {
            return Err(io::Error::other("simulated crash during create"));
        }
        // The truncation is a write like any other: it reaches `current`
        // now and `durable` only at the next honest sync.
        state
            .files
            .entry(path.to_owned())
            .or_default()
            .current
            .clear();
        Ok(Box::new(FaultFile {
            state: Arc::clone(&self.state),
            path: path.to_owned(),
        }))
    }

    fn open(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let state = self.state.lock();
        state.check_alive()?;
        if !state.files.contains_key(path) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("{} does not exist", path.display()),
            ));
        }
        Ok(Box::new(FaultFile {
            state: Arc::clone(&self.state),
            path: path.to_owned(),
        }))
    }

    fn exists(&self, path: &Path) -> bool {
        self.state.lock().files.contains_key(path)
    }

    fn delete(&self, path: &Path) -> io::Result<()> {
        let mut state = self.state.lock();
        state.check_alive()?;
        if state.tick() {
            return Err(io::Error::other("simulated crash during delete"));
        }
        match state.files.remove(path) {
            Some(_) => Ok(()),
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("{} does not exist", path.display()),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(name: &str) -> PathBuf {
        PathBuf::from(format!("/fault/{name}"))
    }

    #[test]
    fn fault_write_read_roundtrip() -> io::Result<()> {
        let vfs = FaultVfs::new();
        let mut f = vfs.create_new(&p("a"))?;
        f.write_all_at(0, b"hello")?;
        f.write_all_at(3, b"LOWORLD")?;
        assert_eq!(f.size()?, 10);
        let mut buf = [0u8; 10];
        f.read_exact_at(0, &mut buf)?;
        assert_eq!(&buf, b"helLOWORLD");
        // Reads past the end are short, not errors.
        let mut tail = [0u8; 8];
        assert_eq!(f.read_at(6, &mut tail)?, 4);
        Ok(())
    }

    #[test]
    fn crash_tears_the_in_flight_write() -> io::Result<()> {
        let vfs = FaultVfs::new();
        let mut f = vfs.create_new(&p("a"))?; // event 0
        f.write_all_at(0, b"aaaa")?; // event 1
        vfs.crash_at(2, CrashMode::KeepUnsynced);
        assert!(f.write_all_at(4, b"bbbb").is_err()); // event 2: crash
        assert!(f.write_all_at(8, b"cccc").is_err(), "halted after crash");
        assert!(vfs.crashed());

        let survivors = vfs.surviving();
        let mut f = survivors.open(&p("a"))?;
        let mut buf = vec![0u8; 6];
        f.read_exact_at(0, &mut buf)?;
        assert_eq!(&buf, b"aaaabb", "front half of the torn write survives");
        assert_eq!(f.size()?, 6);
        Ok(())
    }

    #[test]
    fn drop_unsynced_keeps_only_synced_bytes() -> io::Result<()> {
        let vfs = FaultVfs::new();
        let mut f = vfs.create_new(&p("a"))?; // event 0
        f.write_all_at(0, b"AAAA")?; // event 1
        f.sync()?; // event 2
        vfs.crash_at(3, CrashMode::DropUnsynced);
        assert!(f.write_all_at(4, b"BBBB").is_err()); // event 3: crash

        let survivors = vfs.surviving();
        let mut f = survivors.open(&p("a"))?;
        assert_eq!(f.size()?, 4, "unsynced (torn) write dropped");
        let mut buf = [0u8; 4];
        f.read_exact_at(0, &mut buf)?;
        assert_eq!(&buf, b"AAAA");
        Ok(())
    }

    #[test]
    fn suffix_mode_drops_only_matching_files() -> io::Result<()> {
        let vfs = FaultVfs::new();
        let mut data = vfs.create_new(&p("store"))?; // event 0
        let mut jrnl = vfs.create_new(&p("store-journal"))?; // event 1
        data.write_all_at(0, b"DATA")?; // event 2
        jrnl.write_all_at(0, b"JRNL")?; // event 3
        vfs.crash_at(4, CrashMode::DropUnsyncedMatching("-journal".into()));
        assert!(data.write_all_at(4, b"MORE").is_err()); // event 4: crash

        let survivors = vfs.surviving();
        let mut data = survivors.open(&p("store"))?;
        let mut jrnl = survivors.open(&p("store-journal"))?;
        assert_eq!(data.size()?, 6, "data keeps unsynced bytes + torn half");
        assert_eq!(jrnl.size()?, 0, "journal loses its unsynced bytes");
        Ok(())
    }

    #[test]
    fn lying_sync_pins_nothing() -> io::Result<()> {
        let vfs = FaultVfs::new();
        vfs.lie_on_syncs();
        let mut f = vfs.create_new(&p("a"))?; // event 0
        f.write_all_at(0, b"XXXX")?; // event 1
        f.sync()?; // event 2: lies
        vfs.crash_at(3, CrashMode::DropUnsynced);
        assert!(f.write_all_at(4, b"YYYY").is_err()); // event 3: crash
        let survivors = vfs.surviving();
        let mut f = survivors.open(&p("a"))?;
        assert_eq!(f.size()?, 0, "a lying sync pinned nothing");
        Ok(())
    }

    #[test]
    fn injected_sync_and_write_failures_surface() -> io::Result<()> {
        let vfs = FaultVfs::new();
        let mut f = vfs.create_new(&p("a"))?;
        vfs.fail_sync(0);
        vfs.fail_write(1);
        f.write_all_at(0, b"ok")?; // write 0 succeeds
        assert!(f.sync().is_err(), "sync 0 injected");
        f.sync()?; // sync 1 fine
        assert!(f.write_all_at(2, b"no").is_err(), "write 1 injected");
        assert_eq!(f.size()?, 2, "failed write had no effect");
        f.write_all_at(2, b"yes")?;
        assert!(!vfs.crashed(), "injected errors do not halt the system");
        Ok(())
    }

    #[test]
    fn injected_read_failure_surfaces() -> io::Result<()> {
        let vfs = FaultVfs::new();
        let mut f = vfs.create_new(&p("a"))?;
        f.write_all_at(0, b"abc")?;
        vfs.fail_read(0);
        let mut buf = [0u8; 3];
        assert!(f.read_at(0, &mut buf).is_err());
        f.read_exact_at(0, &mut buf)?;
        assert_eq!(&buf, b"abc");
        Ok(())
    }

    #[test]
    fn delete_and_exists() -> io::Result<()> {
        let vfs = FaultVfs::new();
        drop(vfs.create_new(&p("a"))?);
        assert!(vfs.exists(&p("a")));
        assert!(vfs.create_new(&p("a")).is_err(), "create_new refuses");
        vfs.delete(&p("a"))?;
        assert!(!vfs.exists(&p("a")));
        assert!(vfs.open(&p("a")).is_err());
        assert!(vfs.delete(&p("a")).is_err());
        Ok(())
    }

    #[test]
    fn real_vfs_roundtrip() -> io::Result<()> {
        let dir = std::env::temp_dir().join(format!("pqgram-vfs-{}", std::process::id()));
        std::fs::create_dir_all(&dir)?;
        let path = dir.join("real.bin");
        std::fs::remove_file(&path).ok();
        let vfs = RealVfs;
        {
            let mut f = vfs.create_new(&path)?;
            f.write_all_at(0, b"0123456789")?;
            f.sync()?;
            f.truncate(6)?;
            assert_eq!(f.size()?, 6);
        }
        let mut f = vfs.open(&path)?;
        let mut buf = [0u8; 6];
        f.read_exact_at(0, &mut buf)?;
        assert_eq!(&buf, b"012345");
        assert!(vfs.exists(&path));
        vfs.delete(&path)?;
        assert!(!vfs.exists(&path));
        Ok(())
    }
}
