//! The in-memory write buffer of the segmented engine.
//!
//! A [`Memtable`] absorbs puts and removals until the segmented store
//! flushes it into one immutable segment file
//! ([`crate::segment::Segment`]). Entries are keyed by tree id; a `None`
//! value is a **tombstone** — the tree was removed (or replaced by an
//! empty index, which the relation format cannot represent; see
//! [`crate::ops::put_tree_entries`]) and the flushed segment must shadow
//! any older rows of that tree.
//!
//! The memtable is the newest source in the lookup merge order, so its
//! entries win over every segment and over the main file. Nothing here is
//! durable: a crash loses exactly the buffered entries and nothing else —
//! the usual memtable contract.

use pqgram_core::{TreeId, TreeIndex};
use std::collections::BTreeMap;

/// Buffered per-tree replacements, newest state only: a second put of the
/// same tree overwrites the first in place.
#[derive(Debug, Default)]
pub(crate) struct Memtable {
    entries: BTreeMap<u64, Option<TreeIndex>>,
    grams: u64,
}

impl Memtable {
    pub(crate) fn new() -> Memtable {
        Memtable::default()
    }

    /// Number of buffered entries (tombstones included).
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Distinct grams buffered across all puts since the last clear — the
    /// flush-threshold heuristic (a proxy for the eventual segment size).
    pub(crate) fn grams(&self) -> u64 {
        self.grams
    }

    /// Buffers a full replacement of `id`. An empty index becomes a
    /// tombstone, matching the single-file semantics where empty trees are
    /// not representable in the relation.
    pub(crate) fn put(&mut self, id: TreeId, index: TreeIndex) {
        self.grams += u64::try_from(index.distinct()).unwrap_or(u64::MAX);
        let entry = (index.total() > 0).then_some(index);
        self.entries.insert(id.0, entry);
    }

    /// Buffers a removal of `id` (a tombstone).
    pub(crate) fn remove(&mut self, id: TreeId) {
        self.entries.insert(id.0, None);
    }

    /// The buffered entry of `id`: `None` if the memtable holds nothing
    /// for this tree, `Some(None)` for a tombstone.
    pub(crate) fn get(&self, id: TreeId) -> Option<&Option<TreeIndex>> {
        self.entries.get(&id.0)
    }

    /// All buffered entries, ascending by tree id.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (u64, &Option<TreeIndex>)> {
        self.entries.iter().map(|(&t, e)| (t, e))
    }

    /// Read access to the whole map (segment builds iterate it in order).
    pub(crate) fn entries(&self) -> &BTreeMap<u64, Option<TreeIndex>> {
        &self.entries
    }

    /// Empties the memtable after a successful flush.
    pub(crate) fn clear(&mut self) {
        self.entries.clear();
        self.grams = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqgram_core::PQParams;

    #[test]
    fn put_of_empty_index_is_a_tombstone() {
        let params = PQParams::default();
        let mut mt = Memtable::new();
        mt.put(TreeId(3), TreeIndex::empty(params));
        assert_eq!(mt.get(TreeId(3)), Some(&None));
        let mut idx = TreeIndex::empty(params);
        idx.add(7);
        mt.put(TreeId(3), idx.clone());
        assert_eq!(mt.get(TreeId(3)), Some(&Some(idx)));
        mt.remove(TreeId(3));
        assert_eq!(mt.get(TreeId(3)), Some(&None));
        assert_eq!(mt.len(), 1);
        mt.clear();
        assert!(mt.is_empty());
        assert_eq!(mt.grams(), 0);
    }
}
