//! Index-relation operations shared by [`crate::index_store::IndexStore`]
//! and [`crate::document::DocumentStore`]: row-level manipulation of the
//! `(treeId, pqg, cnt)` B+-tree.

use crate::btree::BTree;
use crate::buffer::BufferPool;
use crate::pager::Result;
use pqgram_core::maintain::IndexDelta;
use pqgram_core::{GramKey, LookupHit, PQParams, TreeId, TreeIndex};

/// Deletes every row of `id`.
pub(crate) fn delete_tree_entries(pool: &BufferPool, slot: usize, id: TreeId) -> Result<()> {
    let tree = BTree::open(pool, slot)?;
    let mut keys = Vec::new();
    tree.for_each_range((id.0, 0), (id.0, u64::MAX), |k, _| {
        keys.push(k);
        true
    })?;
    for k in keys {
        tree.delete(k)?;
    }
    Ok(())
}

/// Inserts all rows of `index` under `id` (caller clears old rows first).
pub(crate) fn put_tree_entries(
    pool: &BufferPool,
    slot: usize,
    id: TreeId,
    index: &TreeIndex,
) -> Result<()> {
    let tree = BTree::open(pool, slot)?;
    for (gram, count) in index.iter() {
        tree.insert((id.0, gram), count)?;
    }
    Ok(())
}

/// True if any row of `id` exists.
pub(crate) fn contains_tree(pool: &BufferPool, slot: usize, id: TreeId) -> Result<bool> {
    let tree = BTree::open(pool, slot)?;
    let mut any = false;
    tree.for_each_range((id.0, 0), (id.0, u64::MAX), |_, _| {
        any = true;
        false
    })?;
    Ok(any)
}

/// Materializes the stored index of `id` (`None` if no rows).
pub(crate) fn tree_index(
    pool: &BufferPool,
    slot: usize,
    params: PQParams,
    id: TreeId,
) -> Result<Option<TreeIndex>> {
    let tree = BTree::open(pool, slot)?;
    let mut index = TreeIndex::empty(params);
    tree.for_each_range((id.0, 0), (id.0, u64::MAX), |(_, gram), count| {
        for _ in 0..count {
            index.add(gram);
        }
        true
    })?;
    Ok((index.total() > 0).then_some(index))
}

/// All stored tree ids via skip scan.
pub(crate) fn tree_ids(pool: &BufferPool, slot: usize) -> Result<Vec<TreeId>> {
    let tree = BTree::open(pool, slot)?;
    let mut ids = Vec::new();
    let mut next = 0u64;
    loop {
        let mut found: Option<u64> = None;
        tree.for_each_range((next, 0), (u64::MAX, u64::MAX), |k, _| {
            found = Some(k.0);
            false
        })?;
        match found {
            None => return Ok(ids),
            Some(t) => {
                ids.push(TreeId(t));
                match t.checked_add(1) {
                    Some(n) => next = n,
                    None => return Ok(ids),
                }
            }
        }
    }
}

/// Applies `I ← I \ I⁻ ⊎ I⁺` to the rows of `id`. Returns the first gram
/// whose removal failed (the caller rolls back), or `None` on success.
pub(crate) fn apply_delta_rows(
    pool: &BufferPool,
    slot: usize,
    id: TreeId,
    delta: &IndexDelta,
) -> Result<Option<GramKey>> {
    let tree = BTree::open(pool, slot)?;
    for &gram in &delta.removals {
        let key = (id.0, gram);
        match tree.get(key)? {
            None | Some(0) => return Ok(Some(gram)),
            Some(1) => {
                tree.delete(key)?;
            }
            Some(c) => {
                tree.insert(key, c - 1)?;
            }
        }
    }
    for &gram in &delta.additions {
        let key = (id.0, gram);
        let current = tree.get(key)?.unwrap_or(0);
        tree.insert(key, current + 1)?;
    }
    Ok(None)
}

/// One ordered scan computing the pq-gram distance of `query` to every
/// stored tree; returns hits below `tau`, ascending by distance.
pub(crate) fn lookup_scan(
    pool: &BufferPool,
    slot: usize,
    query: &TreeIndex,
    tau: f64,
) -> Result<Vec<LookupHit>> {
    let tree = BTree::open(pool, slot)?;
    let mut hits = Vec::new();
    let mut cur: Option<u64> = None;
    let mut stored_total = 0u64;
    let mut intersection = 0u64;
    let mut flush = |cur: Option<u64>, stored_total: u64, intersection: u64| {
        if let Some(t) = cur {
            let denom = (query.total() + stored_total) as f64;
            let distance = if denom == 0.0 {
                0.0
            } else {
                1.0 - 2.0 * intersection as f64 / denom
            };
            if distance < tau {
                hits.push(LookupHit {
                    tree_id: TreeId(t),
                    distance,
                });
            }
        }
    };
    tree.for_each_range((0, 0), (u64::MAX, u64::MAX), |(t, gram), count| {
        if cur != Some(t) {
            flush(cur, stored_total, intersection);
            cur = Some(t);
            stored_total = 0;
            intersection = 0;
        }
        stored_total += count as u64;
        intersection += count.min(query.count(gram)) as u64;
        true
    })?;
    flush(cur, stored_total, intersection);
    hits.sort_by(|a, b| {
        a.distance
            .total_cmp(&b.distance)
            .then_with(|| a.tree_id.cmp(&b.tree_id))
    });
    Ok(hits)
}
