//! Relation-level operations shared by [`crate::index_store::IndexStore`]
//! and [`crate::document::DocumentStore`].
//!
//! Since format version 2 a store file holds **three** B+-tree relations,
//! maintained together inside every transaction:
//!
//! * **forward** (slot [`SLOT_FWD`]) — `(treeId, pqg) → cnt`, the relation
//!   of Figure 4; one contiguous key range per tree;
//! * **inverted** (slot [`SLOT_INV`]) — `(pqg, treeId) → cnt`, the postings
//!   of each gram; one contiguous key range per gram;
//! * **totals** (slot [`SLOT_TOT`]) — `(treeId, 0) → |I(T)|`, the bag size
//!   of every stored tree. A tree has a totals row iff it has forward rows,
//!   so "is this tree stored" is a single point lookup.
//!
//! The inverted relation turns the approximate lookup from a full scan of
//! the forward relation into a candidate merge: probe only the query's
//! distinct grams, accumulate per-candidate bag intersections, and verify
//! just the candidates a [`pqgram_core::plan::LookupPlanner`] cannot rule
//! out. The planner derives every pruning decision losslessly from the
//! pq-gram distance formula: query grams may be skipped while the overlap
//! they could contribute stays below the admissible bound (the exact
//! overlap is recovered by forward-relation point reads for surviving
//! candidates), posting rows of trees whose bag size falls outside the
//! feasible window are dropped at emit time, and candidates whose observed
//! overlap cannot reach the bound are never verified. One plan serves every
//! `τ`: thresholds above 1 — where zero-overlap trees, at distance exactly
//! 1, are also results — enumerate those trees from the totals relation
//! instead of falling back to an exhaustive scan.
//!
//! All writers sort their rows and go through
//! [`crate::btree::BTree::apply_batch_sorted`], so one tree's update costs
//! a handful of descents plus sequential leaf edits instead of a random
//! root-to-leaf walk per gram.
//!
//! Since format version 3 the inverted relation is a posting *directory*:
//! short posting lists stay as inline rows, long ones are grouped into
//! partitioned Elias-Fano posting blocks on dedicated pack pages (see
//! `crate::postings`). Since format version 4 each store also persists a
//! gram membership filter (see `crate::filter`), maintained in the same
//! transaction as the relations, so lookups can skip probes — and whole
//! sources — that provably hold none of the query's grams. Older files are
//! migrated in place on open.

use crate::btree::{BTree, BTreeCheck};
use crate::buffer::BufferPool;
use crate::fence::Fence;
use crate::filter::{self, GramFilter};
use crate::page::PAGE_SIZE_U64;
use crate::pager::{Result, StoreError};
use crate::postings::{self, ProbeCounters};
use pqgram_core::join::overlap_distance;
use pqgram_core::maintain::IndexDelta;
use pqgram_core::plan::LookupPlanner;
use pqgram_core::topk::TopK;
use pqgram_core::{GramKey, LookupHit, PQParams, TreeId, TreeIndex};
use pqgram_tree::{FxHashMap, FxHashSet};
use std::collections::BTreeMap;

/// Meta slot of the forward relation root: `(treeId, pqg) → cnt`.
pub(crate) const SLOT_FWD: usize = 0;
/// Meta slot of the inverted relation root: `(pqg, treeId) → cnt`.
pub(crate) const SLOT_INV: usize = 4;
/// Meta slot of the totals relation root: `(treeId, 0) → |I(T)|`.
pub(crate) const SLOT_TOT: usize = 5;
/// Meta slot holding the on-disk format version.
pub(crate) const SLOT_VERSION: usize = 6;
/// Current format: dual relations + totals + posting directory, plus a
/// per-file gram membership filter (`crate::filter`). Version-1 files
/// (slot unset, forward relation only), version-2 files (row-per-posting
/// inverted relation), and version-3 files (no gram filter) are migrated
/// in place on open.
pub(crate) const FORMAT_VERSION: u64 = 4;
/// Row-per-posting inverted relation, no posting directory.
pub(crate) const FORMAT_VERSION_V2: u64 = 2;
/// Posting directory but no gram membership filter.
pub(crate) const FORMAT_VERSION_V3: u64 = 3;

const KEY_MIN: (u64, u64) = (0, 0);
const KEY_MAX: (u64, u64) = (u64::MAX, u64::MAX);

fn total_u32(total: u64) -> Result<u32> {
    u32::try_from(total).map_err(|_| {
        StoreError::Corrupt(format!("bag size {total} exceeds the u32 totals encoding"))
    })
}

/// Creates the three relation roots and stamps the format version. Called
/// once per `create` (the pager journals meta slots with the header).
// analyze: txn-exempt(store bootstrap: runs during create before any reader can open the file; callers treat a failed create as fatal and discard the half-built store)
pub(crate) fn init_relations(pool: &BufferPool) -> Result<()> {
    BTree::open(pool, SLOT_FWD)?;
    BTree::open(pool, SLOT_INV)?;
    BTree::open(pool, SLOT_TOT)?;
    filter::create(pool, 0)?;
    pool.set_meta(SLOT_VERSION, FORMAT_VERSION)
}

/// Checks the format version on open, migrating older files in place inside
/// one transaction. A version-1 file (forward relation only) gets its
/// inverted directory and totals relation rebuilt; a version-2 file
/// (row-per-posting inverted relation) gets its inverted relation
/// re-encoded as a posting directory; either way the gram filter is built
/// alongside. A version-3 file only gains its gram filter. Returns `true`
/// if a migration ran.
// analyze: entrypoint(recovery)
pub(crate) fn ensure_format(pool: &BufferPool) -> Result<bool> {
    let version = pool.meta(SLOT_VERSION);
    let migrate: fn(&BufferPool) -> Result<()> = match version {
        FORMAT_VERSION => return Ok(false),
        0 => |pool| build_secondary_relations(pool, true),
        FORMAT_VERSION_V2 => |pool| {
            crate::btree::free_tree(pool, SLOT_INV)?;
            rebuild_inverted(pool, true)?;
            filter::rebuild_from_forward(pool)
        },
        FORMAT_VERSION_V3 => filter::rebuild_from_forward,
        v => {
            return Err(StoreError::Corrupt(format!(
                "store format version {v} is newer than this build (reads up to {FORMAT_VERSION})"
            )))
        }
    };
    pool.begin()?;
    let migration = || -> Result<()> {
        migrate(pool)?;
        pool.set_meta(SLOT_VERSION, FORMAT_VERSION)
    };
    match migration() {
        Ok(()) => pool.commit().map(|()| true),
        Err(e) => {
            pool.rollback()?;
            Err(e)
        }
    }
}

/// Bulk-loads all three relations from rows sorted strictly ascending by
/// `(treeId, pqg)`; the relations must be empty. Returns the row count.
/// `compress` selects the posting-directory encoding (`true`, the default
/// path) or row-per-posting inline rows (the ablation path).
pub(crate) fn bulk_load_relations(
    pool: &BufferPool,
    rows: &[((u64, u64), u32)],
    compress: bool,
) -> Result<u64> {
    let n = BTree::open(pool, SLOT_FWD)?.bulk_load(rows.iter().copied())?;
    build_secondary_relations(pool, compress)?;
    Ok(n)
}

/// One ordered scan of the forward relation yielding the inverted rows
/// (sorted by `(pqg, treeId)`) and per-tree totals.
#[allow(clippy::type_complexity)]
fn forward_derived_rows(pool: &BufferPool) -> Result<(Vec<((u64, u64), u32)>, Vec<(u64, u64)>)> {
    let fwd = BTree::open(pool, SLOT_FWD)?;
    let mut inv_rows: Vec<((u64, u64), u32)> = Vec::new();
    let mut totals: Vec<(u64, u64)> = Vec::new();
    let mut cur: Option<u64> = None;
    let mut acc = 0u64;
    fwd.for_each_range(KEY_MIN, KEY_MAX, |(t, g), c| {
        if cur != Some(t) {
            if let Some(done) = cur {
                totals.push((done, acc));
            }
            cur = Some(t);
            acc = 0;
        }
        acc += u64::from(c);
        inv_rows.push(((g, t), c));
        true
    })?;
    if let Some(done) = cur {
        totals.push((done, acc));
    }
    inv_rows.sort_unstable_by_key(|&(k, _)| k);
    Ok((inv_rows, totals))
}

/// Rebuilds the inverted directory (which must be empty) from one ordered
/// scan of the forward relation.
fn rebuild_inverted(pool: &BufferPool, compress: bool) -> Result<()> {
    let (inv_rows, _) = forward_derived_rows(pool)?;
    let inv = BTree::open(pool, SLOT_INV)?;
    postings::bulk_load_inverted(pool, &inv, &inv_rows, compress)
}

/// Rebuilds the inverted and totals relations (which must be empty) and the
/// gram filter from one ordered scan of the forward relation.
fn build_secondary_relations(pool: &BufferPool, compress: bool) -> Result<()> {
    let (inv_rows, totals) = forward_derived_rows(pool)?;
    let inv = BTree::open(pool, SLOT_INV)?;
    postings::bulk_load_inverted(pool, &inv, &inv_rows, compress)?;
    let mut tot_rows: Vec<((u64, u64), u32)> = Vec::with_capacity(totals.len());
    for (t, total) in totals {
        tot_rows.push(((t, 0), total_u32(total)?));
    }
    BTree::open(pool, SLOT_TOT)?.bulk_load(tot_rows)?;
    let mut grams: Vec<u64> = inv_rows.iter().map(|&((g, _), _)| g).collect();
    filter::rebuild_from_grams(pool, &mut grams)
}

/// Deletes every row of `id` from all three relations.
pub(crate) fn delete_tree_entries(pool: &BufferPool, id: TreeId) -> Result<()> {
    let fwd = BTree::open(pool, SLOT_FWD)?;
    let mut grams = Vec::new();
    fwd.for_each_range((id.0, 0), (id.0, u64::MAX), |(_, g), _| {
        grams.push(g);
        true
    })?;
    if grams.is_empty() {
        return Ok(());
    }
    // The range scan yields grams ascending: the batch is sorted.
    fwd.apply_batch_sorted(grams.iter().map(|&g| ((id.0, g), None)))?;
    let inv = BTree::open(pool, SLOT_INV)?;
    for &g in &grams {
        if !postings::remove_posting(pool, &inv, g, id.0)? {
            return Err(StoreError::Corrupt(format!(
                "inverted relation missing posting ({g}, {}) during delete",
                id.0
            )));
        }
    }
    BTree::open(pool, SLOT_TOT)?.delete((id.0, 0))?;
    Ok(())
}

/// Inserts all rows of `index` under `id` into all three relations (caller
/// clears old rows first) and folds the tree's grams into the gram filter.
/// An empty index stores nothing — empty trees are not representable in the
/// relation, matching version 1. Returns `true` if the filter was rebuilt
/// (or dropped) rather than updated in place: callers holding an in-memory
/// mirror of the filter must reload it.
pub(crate) fn put_tree_entries(pool: &BufferPool, id: TreeId, index: &TreeIndex) -> Result<bool> {
    let mut rows: Vec<(GramKey, u32)> = index.iter().collect();
    if rows.is_empty() {
        return Ok(false);
    }
    rows.sort_unstable_by_key(|&(g, _)| g);
    BTree::open(pool, SLOT_FWD)?
        .apply_batch_sorted(rows.iter().map(|&(g, c)| ((id.0, g), Some(c))))?;
    let inv = BTree::open(pool, SLOT_INV)?;
    for &(g, c) in &rows {
        postings::upsert_posting(pool, &inv, g, id.0, c)?;
    }
    BTree::open(pool, SLOT_TOT)?.insert((id.0, 0), total_u32(index.total())?)?;
    let mut grams: Vec<u64> = rows.iter().map(|&(g, _)| g).collect();
    filter::insert_grams(pool, &mut grams)
}

/// True if `id` is stored: one point lookup in the totals relation.
pub(crate) fn contains_tree(pool: &BufferPool, id: TreeId) -> Result<bool> {
    Ok(stored_total(pool, id)?.is_some())
}

/// The stored bag size of `id`, if any: one totals-relation point read.
/// Mirror maintainers use this after a committed write to refresh their
/// [`TotalsView`] entry.
pub(crate) fn stored_total(pool: &BufferPool, id: TreeId) -> Result<Option<u32>> {
    BTree::open_existing(pool, SLOT_TOT)?.get((id.0, 0))
}

/// Materializes the stored index of `id` (`None` if no rows).
pub(crate) fn tree_index(
    pool: &BufferPool,
    params: PQParams,
    id: TreeId,
) -> Result<Option<TreeIndex>> {
    let tree = BTree::open_existing(pool, SLOT_FWD)?;
    let mut index = TreeIndex::empty(params);
    tree.for_each_range((id.0, 0), (id.0, u64::MAX), |(_, gram), count| {
        index.add_n(gram, count);
        true
    })?;
    Ok((index.total() > 0).then_some(index))
}

/// All stored tree ids, ascending: one ordered scan of the totals relation
/// (one row per tree) instead of a skip scan over the forward relation.
pub(crate) fn tree_ids(pool: &BufferPool) -> Result<Vec<TreeId>> {
    let tot = BTree::open_existing(pool, SLOT_TOT)?;
    let mut ids = Vec::new();
    tot.for_each_range(KEY_MIN, KEY_MAX, |(t, _), _| {
        ids.push(TreeId(t));
        true
    })?;
    Ok(ids)
}

/// Applies `I ← I \ I⁻ ⊎ I⁺` to the rows of `id` across all three
/// relations, folding the added grams into the gram filter (removals never
/// shrink it — the filter stays a superset). Returns `(failed, rebuilt)`:
/// `failed` is the first gram (in `delta.removals` order) whose removal
/// failed — the caller rolls the transaction back — and `rebuilt` is `true`
/// if the filter was rebuilt (or dropped) rather than updated in place, so
/// callers holding an in-memory mirror must reload it.
pub(crate) fn apply_delta_rows(
    pool: &BufferPool,
    id: TreeId,
    delta: &IndexDelta,
) -> Result<(Option<GramKey>, bool)> {
    let fwd = BTree::open(pool, SLOT_FWD)?;
    // Current multiplicity of every touched gram (one point read each).
    let mut stored: FxHashMap<GramKey, u32> = FxHashMap::default();
    for &g in delta.removals.iter().chain(&delta.additions) {
        if let std::collections::hash_map::Entry::Vacant(e) = stored.entry(g) {
            e.insert(fwd.get((id.0, g))?.unwrap_or(0));
        }
    }
    // Replay removals in order *before* writing anything, so the reported
    // gram matches the one-at-a-time semantics of version 1.
    let mut after = stored.clone();
    for &g in &delta.removals {
        match after.get_mut(&g) {
            Some(c) if *c > 0 => *c -= 1,
            _ => return Ok((Some(g), false)),
        }
    }
    for &g in &delta.additions {
        if let Some(c) = after.get_mut(&g) {
            *c += 1;
        }
    }
    // Net row mutations, sorted by gram; unchanged multiplicities drop out.
    let mut ops: Vec<(GramKey, Option<u32>)> = after
        .iter()
        .filter(|&(g, &c)| stored.get(g) != Some(&c))
        .map(|(&g, &c)| (g, (c > 0).then_some(c)))
        .collect();
    ops.sort_unstable_by_key(|&(g, _)| g);
    fwd.apply_batch_sorted(ops.iter().map(|&(g, v)| ((id.0, g), v)))?;
    let inv = BTree::open(pool, SLOT_INV)?;
    for &(g, v) in &ops {
        match v {
            Some(c) => postings::upsert_posting(pool, &inv, g, id.0, c)?,
            None => {
                if !postings::remove_posting(pool, &inv, g, id.0)? {
                    return Err(StoreError::Corrupt(format!(
                        "inverted relation missing posting ({g}, {}) during delta",
                        id.0
                    )));
                }
            }
        }
    }
    let tot = BTree::open(pool, SLOT_TOT)?;
    let old_total = u64::from(tot.get((id.0, 0))?.unwrap_or(0));
    let removed = u64::try_from(delta.removals.len()).unwrap_or(u64::MAX);
    let added = u64::try_from(delta.additions.len()).unwrap_or(u64::MAX);
    let Some(new_total) = (old_total + added).checked_sub(removed) else {
        return Err(StoreError::Corrupt(format!(
            "delta removes more grams than {id:?} holds (total {old_total})"
        )));
    };
    if new_total == 0 {
        tot.delete((id.0, 0))?;
    } else {
        tot.insert((id.0, 0), total_u32(new_total)?)?;
    }
    let mut added: Vec<u64> = delta.additions.clone();
    let rebuilt = if added.is_empty() {
        false
    } else {
        filter::insert_grams(pool, &mut added)?
    };
    Ok((None, rebuilt))
}

/// Source id used in [`LookupStats::by_source`] for the main store file.
/// Segment sources report their sequence number instead.
pub const MAIN_SOURCE: u64 = u64::MAX;

/// Which access plan a lookup executed.
///
/// Every threshold runs the candidate merge. Thresholds above 1 — where
/// zero-overlap trees, at distance exactly 1, are also results — enumerate
/// those trees from the totals relation (one row per tree) instead of
/// falling back to an exhaustive forward scan, so the old `τ > 1` cost
/// cliff ("every row in the store") no longer exists; see DESIGN.md §15.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LookupPlan {
    /// Planner-driven candidate merge over the inverted posting directory.
    #[default]
    CandidateMerge,
    /// Exhaustive forward scan requested explicitly (benchmark reference
    /// and test oracle).
    ExhaustiveReference,
}

/// How the inverted relation is encoded at bulk-load time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum InvertedEncoding {
    /// Partitioned Elias-Fano posting blocks (the format-v3 default).
    #[default]
    PostingBlocks,
    /// One directory row per posting (the `--no-compress` ablation; still a
    /// valid v3 store, matching the v2 footprint).
    RowPerPosting,
}

/// On-disk footprint of one store's relations, in bytes (whole pages).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RelationBytes {
    /// Forward relation B+-tree pages.
    pub forward: u64,
    /// Inverted posting-directory B+-tree pages.
    pub inverted_directory: u64,
    /// Pack pages holding Elias-Fano posting blocks.
    pub posting_blocks: u64,
    /// Totals relation B+-tree pages.
    pub totals: u64,
}

impl RelationBytes {
    /// Bytes of the whole inverted relation: directory plus posting blocks.
    pub fn inverted_total(&self) -> u64 {
        self.inverted_directory + self.posting_blocks
    }

    /// Bytes across all relations.
    pub fn total(&self) -> u64 {
        self.forward + self.inverted_directory + self.posting_blocks + self.totals
    }
}

/// Measures the on-disk footprint of each relation by walking its pages.
pub(crate) fn relation_bytes(pool: &BufferPool) -> Result<RelationBytes> {
    let fwd = BTree::open_existing(pool, SLOT_FWD)?;
    let inv = BTree::open_existing(pool, SLOT_INV)?;
    let tot = BTree::open_existing(pool, SLOT_TOT)?;
    let (_, _, pack_pages) = postings::expand_all(pool, &inv)?;
    Ok(RelationBytes {
        forward: fwd.page_span()? * PAGE_SIZE_U64,
        inverted_directory: inv.page_span()? * PAGE_SIZE_U64,
        posting_blocks: u64::try_from(pack_pages.len()).unwrap_or(u64::MAX) * PAGE_SIZE_U64,
        totals: tot.page_span()? * PAGE_SIZE_U64,
    })
}

/// Access-path and work counters of one [`lookup_with_stats`] call.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LookupStats {
    /// B+-tree rows read: posting rows, one totals row per candidate (or
    /// zero-overlap tree), and one forward point read per budget-skipped
    /// gram per verified candidate on the merge plan; every forward row on
    /// the scan plan.
    pub rows_read: u64,
    /// Distinct query grams actually probed (merge plan only).
    pub grams_probed: usize,
    /// Trees that surfaced as candidates: trees sharing a probed gram with
    /// the query, plus the zero-overlap trees enumerated when `τ > 1` (scan
    /// plan: every stored tree).
    pub candidates: usize,
    /// Candidates surviving the planner's size window whose distance was
    /// computed.
    pub verified: usize,
    /// Results admitted by the threshold (or kept by the top-k heap).
    pub hits: usize,
    /// `true` if the candidate-merge plan ran, `false` for the explicit
    /// exhaustive reference scan.
    pub used_inverted: bool,
    /// Which access plan ran (mirrors [`Self::used_inverted`]).
    pub plan: LookupPlan,
    /// Sources (memtable, segments, main file) the lookup considered.
    pub sources_considered: usize,
    /// Sources skipped whole because their gram filter rejected every
    /// query gram.
    pub sources_skipped_filter: usize,
    /// Sources skipped whole because no stored bag size in the source's
    /// totals range fits the planner's feasible size window.
    pub sources_skipped_window: usize,
    /// Query grams never probed because a source's filter rejected them.
    pub grams_skipped_filter: usize,
    /// Query grams never probed because the overlap they could contribute
    /// stays below the planner's admissible bound (their exact overlap is
    /// recovered per verified candidate by forward point reads).
    pub grams_skipped_budget: usize,
    /// Probes the gram filter admitted that then produced no posting rows.
    pub filter_false_positive_probes: u64,
    /// Posting rows dropped at emit time because the tree's bag size falls
    /// outside the planner's feasible size window.
    pub rows_pruned_window: u64,
    /// Elias-Fano posting blocks decoded during the probe phase.
    pub blocks_decoded: u64,
    /// Posting blocks skipped on per-block metadata without decoding.
    pub blocks_skipped: u64,
    /// Posting-block payload bytes run through the decoder.
    pub bytes_decoded: u64,
    /// Rows read per source, in probe order: one `(source, rows)` entry per
    /// live segment (keyed by its sequence number) and one for the main
    /// file (keyed by [`MAIN_SOURCE`]). A single-file store reports exactly
    /// one [`MAIN_SOURCE`] entry.
    pub by_source: Vec<(u64, u64)>,
}

impl LookupStats {
    /// Folds probe-phase decode counters into the stats.
    pub(crate) fn absorb(&mut self, counters: &ProbeCounters) {
        self.rows_read += counters.rows;
        self.blocks_decoded += counters.blocks_decoded;
        self.blocks_skipped += counters.blocks_skipped;
        self.bytes_decoded += counters.bytes_decoded;
    }
}

/// An in-memory mirror of one source's totals relation: the exact
/// `treeId → |I(T)|` map plus loose min/max bag-size bounds. The bounds
/// only widen (removals never shrink them), so they always cover every
/// stored bag size — a conservative input to the planner's size window.
#[derive(Clone, Debug, Default)]
pub(crate) struct TotalsView {
    map: BTreeMap<u64, u32>,
    min_total: u32,
    max_total: u32,
}

impl TotalsView {
    /// An empty view (bounds cover nothing).
    pub(crate) fn empty() -> TotalsView {
        TotalsView {
            map: BTreeMap::new(),
            min_total: u32::MAX,
            max_total: 0,
        }
    }

    /// Loads the view from one ordered scan of the totals relation.
    pub(crate) fn load(pool: &BufferPool) -> Result<TotalsView> {
        let tot = BTree::open_existing(pool, SLOT_TOT)?;
        let mut view = TotalsView::empty();
        tot.for_each_range(KEY_MIN, KEY_MAX, |(t, _), c| {
            view.set(t, c);
            true
        })?;
        Ok(view)
    }

    /// Inserts or updates one tree's bag size, widening the bounds.
    pub(crate) fn set(&mut self, t: u64, total: u32) {
        self.min_total = self.min_total.min(total);
        self.max_total = self.max_total.max(total);
        self.map.insert(t, total);
    }

    /// Removes one tree (the bounds stay wide — still a superset).
    pub(crate) fn remove(&mut self, t: u64) {
        self.map.remove(&t);
    }

    /// The stored bag size of `t`, if present.
    pub(crate) fn get(&self, t: u64) -> Option<u32> {
        self.map.get(&t).copied()
    }

    /// Number of trees in the view.
    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    /// Conservative `(lo, hi)` covering every stored bag size. An empty
    /// view returns an empty range (`lo > hi`).
    pub(crate) fn bounds(&self) -> (u64, u64) {
        if self.map.is_empty() {
            (1, 0)
        } else {
            (u64::from(self.min_total), u64::from(self.max_total))
        }
    }

    /// All `(treeId, total)` pairs, ascending by tree id.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.map.iter().map(|(&t, &c)| (t, c))
    }
}

/// One lookup source's acceleration state: the learned fence of an
/// immutable segment, the gram membership filter, and the in-memory totals
/// view. Every field is advisory — `None` degrades to relation probes and
/// disk reads, never to wrong answers.
#[derive(Clone, Copy, Default)]
pub(crate) struct SourceProbe<'a> {
    /// Learned fence over the source's immutable inverted directory.
    pub(crate) fence: Option<&'a Fence>,
    /// Gram membership filter (a superset of the source's stored grams).
    pub(crate) filter: Option<&'a GramFilter>,
    /// Totals mirror for emit-time size-window pruning and in-memory
    /// totals reads.
    pub(crate) totals: Option<&'a TotalsView>,
}

/// Budget skipping only pays when a gram's postings dwarf the per-survivor
/// compensation point read; grams estimated below this many rows are
/// always probed.
const SKIP_MIN_ROWS: u64 = 16;

/// The probe phase's output for one source.
struct Gathered {
    /// `(treeId, observed overlap)` of every surviving candidate,
    /// ascending by tree id.
    candidates: Vec<(u64, u64)>,
    /// Budget-skipped query grams `(gram, query multiplicity)`, ascending
    /// by gram; their overlap is recovered per candidate at verify time.
    skipped: Vec<(GramKey, u32)>,
}

/// The probe phase of the candidate merge against one source: consult the
/// gram filter, the planner's size window, and the overlap budget, then
/// range-probe the remaining query grams and accumulate per-tree bag
/// intersections. With `prune` false every advisory stage is disabled and
/// this degrades to the exhaustive probe of every query gram (the
/// pre-planner plan, kept as the benchmark ablation baseline).
///
/// `skip` masks out trees owned by a newer source in a segmented store:
/// their posting rows are still read (and counted) during the probe, but
/// they contribute no candidate. An empty mask is the plain single-file
/// plan, byte for byte.
fn gather_candidates(
    pool: &BufferPool,
    src: &SourceProbe<'_>,
    query: &TreeIndex,
    planner: &LookupPlanner,
    skip: &FxHashSet<u64>,
    prune: bool,
    stats: &mut LookupStats,
) -> Result<Gathered> {
    stats.sources_considered += 1;
    let done = Gathered {
        candidates: Vec::new(),
        skipped: Vec::new(),
    };
    let mut probe: Vec<(GramKey, u32)> = query.iter().collect();
    probe.sort_unstable_by_key(|&(g, _)| g);
    let had_grams = !probe.is_empty();
    if prune {
        // Membership filter: a rejected gram is definitively absent from
        // this source — zero overlap, nothing to probe or compensate.
        if let Some(f) = src.filter {
            let before = probe.len();
            probe.retain(|&(g, _)| f.contains(g));
            stats.grams_skipped_filter += before - probe.len();
            if had_grams && probe.is_empty() && !planner.needs_zero_overlap() {
                stats.sources_skipped_filter += 1;
                return Ok(done);
            }
        }
        // Size window: if no bag size this source stores can reach the
        // bound even at maximal overlap, nothing here is a result. (When
        // the bound admits distance 1.0 every size is feasible, so this
        // never conflicts with zero-overlap enumeration.)
        if let Some(view) = src.totals {
            let (lo, hi) = view.bounds();
            if !planner.admits_total_range(lo, hi) && !planner.needs_zero_overlap() {
                stats.sources_skipped_window += 1;
                return Ok(done);
            }
        }
    }
    let inv = match src.fence {
        Some(_) => None,
        None => Some(BTree::open_existing(pool, SLOT_INV)?),
    };
    // Overlap budget: a set of grams whose summed query multiplicity stays
    // at or below the budget can be skipped — a tree found only in them
    // cannot reach the bound, and one found elsewhere gets their exact
    // contribution back via forward point reads. Skip the costliest grams
    // first (directory-walk row estimates; walks are not counted as reads).
    let mut skipped: Vec<(u64, GramKey, u32)> = Vec::new();
    let mut skipped_mass = 0u64;
    if prune {
        let budget = planner.overlap_budget();
        if budget > 0 {
            let mut est: Vec<(u64, GramKey, u32)> = Vec::with_capacity(probe.len());
            for &(g, qc) in &probe {
                let rows = match (src.fence, inv.as_ref()) {
                    (Some(f), _) => f.estimate_rows(g),
                    (None, Some(dir)) => postings::estimate_rows(dir, g)?,
                    (None, None) => 0,
                };
                est.push((rows, g, qc));
            }
            est.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            let mut picked: FxHashSet<GramKey> = FxHashSet::default();
            for &(rows, g, qc) in &est {
                if rows < SKIP_MIN_ROWS {
                    break;
                }
                if skipped_mass + u64::from(qc) <= budget {
                    skipped_mass += u64::from(qc);
                    skipped.push((rows, g, qc));
                    picked.insert(g);
                }
            }
            if !picked.is_empty() {
                probe.retain(|&(g, _)| !picked.contains(&g));
            }
        }
    }
    let mut probed = probe.len();
    let mut shared: FxHashMap<u64, u64> = FxHashMap::default();
    let mut counters = ProbeCounters::default();
    let mut pruned_window = 0u64;
    {
        let view = if prune { src.totals } else { None };
        let mut cache = postings::BlockCache::default();
        let mut probe_grams = |grams: &[(GramKey, u32)],
                       shared: &mut FxHashMap<u64, u64>,
                       counters: &mut ProbeCounters,
                       pruned_window: &mut u64,
                       stats: &mut LookupStats|
         -> Result<()> {
            for &(g, qc) in grams {
                let before = counters.rows;
                let mut emit = |t: u64, c: u32| {
                    if skip.contains(&t) {
                        return true;
                    }
                    if let Some(view) = view {
                        if let Some(m) = view.get(t) {
                            if !planner.admits_total(u64::from(m)) {
                                *pruned_window += 1;
                                return true;
                            }
                        }
                    }
                    *shared.entry(t).or_insert(0) += u64::from(qc.min(c));
                    true
                };
                match (src.fence, inv.as_ref()) {
                    (Some(fence), _) => {
                        fence.for_each_posting(pool, g, &mut cache, counters, &mut emit)?;
                    }
                    (None, Some(dir)) => {
                        postings::for_each_posting(pool, dir, g, &mut cache, counters, &mut emit)?;
                    }
                    (None, None) => {}
                }
                if prune && src.filter.is_some() && counters.rows == before {
                    stats.filter_false_positive_probes += 1;
                }
            }
            Ok(())
        };
        probe_grams(&probe, &mut shared, &mut counters, &mut pruned_window, stats)?;
        // Second look at the provisional skips: compensation later costs
        // one forward point read per surviving candidate, so a skipped
        // gram only pays off when its posting list outweighs the current
        // candidate set. Re-probe the rest, cheapest first — a re-probe
        // can only add candidates, so the greedy cut is monotone.
        if !skipped.is_empty() {
            skipped.sort_unstable();
            let mut kept: Vec<(u64, GramKey, u32)> = Vec::with_capacity(skipped.len());
            for &(rows, g, qc) in &skipped {
                let survivors = u64::try_from(shared.len()).unwrap_or(u64::MAX);
                if rows <= survivors {
                    probe_grams(&[(g, qc)], &mut shared, &mut counters, &mut pruned_window, stats)?;
                    skipped_mass -= u64::from(qc);
                    probed += 1;
                } else {
                    kept.push((rows, g, qc));
                }
            }
            skipped = kept;
        }
    }
    stats.grams_probed += probed;
    stats.grams_skipped_budget += skipped.len();
    stats.absorb(&counters);
    stats.rows_pruned_window += pruned_window;
    stats.candidates += shared.len();
    // Coarse overlap prune: `observed + skipped_mass` bounds the true
    // overlap from above, so a candidate the planner rejects here cannot
    // reach the bound with any compensation.
    let mut candidates: Vec<(u64, u64)> = if prune {
        shared
            .into_iter()
            .filter(|&(_, o)| planner.admits_overlap(o + skipped_mass))
            .collect()
    } else {
        shared.into_iter().collect()
    };
    candidates.sort_unstable_by_key(|&(t, _)| t);
    let mut skipped: Vec<(GramKey, u32)> = skipped.into_iter().map(|(_, g, qc)| (g, qc)).collect();
    skipped.sort_unstable_by_key(|&(g, _)| g);
    Ok(Gathered {
        candidates,
        skipped,
    })
}

/// Enumerates the trees of one source sharing **no** gram with the query —
/// at pq-gram distance exactly 1 — ascending by tree id, excluding the
/// `skip` mask and the already-surfaced `exclude` candidates (sorted by
/// tree id). Runs only when the planner admits distance 1.0, in which case
/// no window or overlap prune can have fired, so `exclude` holds *every*
/// tree sharing a gram and the union is exactly the stored forest. Each
/// enumerated tree costs one totals row (from the view when present).
fn for_each_zero_overlap(
    pool: &BufferPool,
    src: &SourceProbe<'_>,
    skip: &FxHashSet<u64>,
    exclude: &[(u64, u64)],
    stats: &mut LookupStats,
    mut f: impl FnMut(u64, u32) -> bool,
) -> Result<()> {
    let mut i = 0usize;
    let mut visit = |t: u64, m: u32, stats: &mut LookupStats| -> bool {
        while exclude.get(i).is_some_and(|&(e, _)| e < t) {
            i += 1;
        }
        if exclude.get(i).is_some_and(|&(e, _)| e == t) || skip.contains(&t) {
            return true;
        }
        stats.rows_read += 1;
        stats.candidates += 1;
        stats.verified += 1;
        f(t, m)
    };
    match src.totals {
        Some(view) => {
            for (t, m) in view.iter() {
                if !visit(t, m, stats) {
                    break;
                }
            }
            Ok(())
        }
        None => {
            let tot = BTree::open_existing(pool, SLOT_TOT)?;
            tot.for_each_range(KEY_MIN, KEY_MAX, |(t, _), m| visit(t, m, stats))
        }
    }
}

/// The planner-driven candidate merge against one source, appending its
/// hits (unsorted — the caller sorts once at the end).
///
/// The verification phase (one totals read + size window + compensation
/// point reads + exact distance per candidate) touches disjoint rows per
/// candidate, so it fans out over `pqgram_core::par` in deterministic
/// chunk order: the merged hit list is byte-identical to the serial plan
/// for any thread count.
#[allow(clippy::too_many_arguments)]
pub(crate) fn lookup_source_threshold(
    pool: &BufferPool,
    src: &SourceProbe<'_>,
    query: &TreeIndex,
    tau: f64,
    threads: usize,
    skip: &FxHashSet<u64>,
    prune: bool,
    stats: &mut LookupStats,
    hits: &mut Vec<LookupHit>,
) -> Result<()> {
    let planner = LookupPlanner::threshold(query.total(), tau);
    let gathered = gather_candidates(pool, src, query, &planner, skip, prune, stats)?;
    let fwd = BTree::open_existing(pool, SLOT_FWD)?;
    let tot = BTree::open_existing(pool, SLOT_TOT)?;
    let skipped = &gathered.skipped;
    let view = src.totals;
    let chunks = pqgram_core::par::map_chunks(&gathered.candidates, threads, |part| {
        let mut out = Vec::new();
        let mut rows_read = 0u64;
        let mut verified = 0usize;
        for &(t, overlap) in part {
            let total = match view.and_then(|v| v.get(t)) {
                Some(m) => m,
                None => tot.get((t, 0))?.ok_or_else(|| {
                    StoreError::Corrupt(format!("tree {t} has inverted rows but no totals row"))
                })?,
            };
            rows_read += 1;
            if !planner.admits_total(u64::from(total)) {
                continue;
            }
            let mut overlap = overlap;
            for &(g, qc) in skipped {
                rows_read += 1;
                if let Some(c) = fwd.get((t, g))? {
                    overlap += u64::from(qc.min(c));
                }
            }
            verified += 1;
            let distance = overlap_distance(overlap, query.total(), u64::from(total));
            if planner.admits_distance(distance) {
                out.push(LookupHit {
                    tree_id: TreeId(t),
                    distance,
                });
            }
        }
        Ok::<_, StoreError>((out, rows_read, verified))
    });
    for chunk in chunks {
        let (out, rows_read, verified) = chunk?;
        hits.extend(out);
        stats.rows_read += rows_read;
        stats.verified += verified;
    }
    if planner.needs_zero_overlap() {
        for_each_zero_overlap(pool, src, skip, &gathered.candidates, stats, |t, m| {
            let distance = overlap_distance(0, query.total(), u64::from(m));
            if planner.admits_distance(distance) {
                hits.push(LookupHit {
                    tree_id: TreeId(t),
                    distance,
                });
            }
            true
        })?;
    }
    Ok(())
}

/// The top-k candidate merge against one source, folding its trees into
/// the shared heap. Verification is sequential in descending observed
/// overlap (ties: ascending tree id) so the heap's bound tightens as early
/// as possible; once the planner rejects an observed overlap it rejects
/// every later one, so the loop breaks. Zero-overlap trees (distance
/// exactly 1) are enumerated ascending only while the heap still admits
/// them.
pub(crate) fn lookup_source_top_k(
    pool: &BufferPool,
    src: &SourceProbe<'_>,
    query: &TreeIndex,
    planner: &mut LookupPlanner,
    topk: &mut TopK,
    skip: &FxHashSet<u64>,
    stats: &mut LookupStats,
) -> Result<()> {
    planner.tighten_to(topk.bound());
    let gathered = gather_candidates(pool, src, query, planner, skip, true, stats)?;
    let fwd = BTree::open_existing(pool, SLOT_FWD)?;
    let tot = BTree::open_existing(pool, SLOT_TOT)?;
    let mass: u64 = gathered.skipped.iter().map(|&(_, qc)| u64::from(qc)).sum();
    let mut by_overlap = gathered.candidates.clone();
    by_overlap.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    for &(t, overlap) in &by_overlap {
        planner.tighten_to(topk.bound());
        if !planner.admits_overlap(overlap + mass) {
            break;
        }
        let total = match src.totals.and_then(|v| v.get(t)) {
            Some(m) => m,
            None => tot.get((t, 0))?.ok_or_else(|| {
                StoreError::Corrupt(format!("tree {t} has inverted rows but no totals row"))
            })?,
        };
        stats.rows_read += 1;
        if !planner.admits_total(u64::from(total)) {
            continue;
        }
        let mut overlap = overlap;
        for &(g, qc) in &gathered.skipped {
            stats.rows_read += 1;
            if let Some(c) = fwd.get((t, g))? {
                overlap += u64::from(qc.min(c));
            }
        }
        stats.verified += 1;
        let distance = overlap_distance(overlap, query.total(), u64::from(total));
        topk.offer(TreeId(t), distance);
    }
    planner.tighten_to(topk.bound());
    if planner.needs_zero_overlap() {
        // All zero-overlap trees sit at distance exactly 1 and are offered
        // in ascending id order, so the first rejection ends the source.
        for_each_zero_overlap(pool, src, skip, &gathered.candidates, stats, |t, m| {
            let distance = overlap_distance(0, query.total(), u64::from(m));
            topk.offer(TreeId(t), distance)
        })?;
    }
    Ok(())
}

pub(crate) fn merge_stats_base() -> LookupStats {
    LookupStats {
        used_inverted: true,
        plan: LookupPlan::CandidateMerge,
        ..LookupStats::default()
    }
}

/// The approximate lookup: one planner-driven candidate merge for every
/// threshold — `τ > 1` enumerates the zero-overlap trees from the totals
/// relation instead of scanning the forward relation. `threads > 1` fans
/// the exact-distance verification phase out over that many workers.
pub(crate) fn lookup_with_stats(
    pool: &BufferPool,
    src: &SourceProbe<'_>,
    query: &TreeIndex,
    tau: f64,
    threads: usize,
) -> Result<(Vec<LookupHit>, LookupStats)> {
    let skip = FxHashSet::default();
    let mut stats = merge_stats_base();
    let mut hits = Vec::new();
    lookup_source_threshold(pool, src, query, tau, threads, &skip, true, &mut stats, &mut hits)?;
    sort_hits(&mut hits);
    stats.hits = hits.len();
    stats.by_source = vec![(MAIN_SOURCE, stats.rows_read)];
    Ok((hits, stats))
}

/// The candidate merge with every advisory pruning stage disabled: no
/// filter consults, no size window, no gram skipping, no overlap prune —
/// the plan exactly as it ran before the planner existed. Kept as the
/// benchmark ablation baseline so pruning wins are measured in-binary
/// against identical data.
pub(crate) fn lookup_unpruned_with_stats(
    pool: &BufferPool,
    query: &TreeIndex,
    tau: f64,
    threads: usize,
) -> Result<(Vec<LookupHit>, LookupStats)> {
    let skip = FxHashSet::default();
    let mut stats = merge_stats_base();
    let mut hits = Vec::new();
    let src = SourceProbe::default();
    lookup_source_threshold(pool, &src, query, tau, threads, &skip, false, &mut stats, &mut hits)?;
    sort_hits(&mut hits);
    stats.hits = hits.len();
    stats.by_source = vec![(MAIN_SOURCE, stats.rows_read)];
    Ok((hits, stats))
}

/// The k-nearest lookup: a candidate merge whose bound starts at distance
/// 1 (every stored tree qualifies) and tightens to the heap's worst kept
/// distance as it fills. Returns the hits ascending by `(distance, id)` —
/// exactly the first `k` of the distance-sorted exhaustive answer.
pub(crate) fn lookup_top_k_with_stats(
    pool: &BufferPool,
    src: &SourceProbe<'_>,
    query: &TreeIndex,
    k: usize,
) -> Result<(Vec<LookupHit>, LookupStats)> {
    let skip = FxHashSet::default();
    let mut stats = merge_stats_base();
    let mut planner = LookupPlanner::nearest(query.total());
    let mut topk = TopK::new(k);
    lookup_source_top_k(pool, src, query, &mut planner, &mut topk, &skip, &mut stats)?;
    let hits = topk.into_sorted_hits();
    stats.hits = hits.len();
    stats.by_source = vec![(MAIN_SOURCE, stats.rows_read)];
    Ok((hits, stats))
}

/// One ordered scan of the forward relation computing the distance of
/// `query` to every stored tree — the version-1 plan, kept only as the
/// reference side of the benchmark harness and as the test-suite oracle.
pub(crate) fn lookup_scan_with_stats(
    pool: &BufferPool,
    query: &TreeIndex,
    tau: f64,
) -> Result<(Vec<LookupHit>, LookupStats)> {
    let skip = FxHashSet::default();
    let (hits, mut stats) = lookup_scan_masked(pool, query, tau, &skip)?;
    stats.by_source = vec![(MAIN_SOURCE, stats.rows_read)];
    Ok((hits, stats))
}

/// The exhaustive forward scan with a mask: rows of trees in `skip` are
/// read (and counted) but never verified or reported. An empty mask is the
/// plain single-file scan, byte for byte.
pub(crate) fn lookup_scan_masked(
    pool: &BufferPool,
    query: &TreeIndex,
    tau: f64,
    skip: &FxHashSet<u64>,
) -> Result<(Vec<LookupHit>, LookupStats)> {
    let tree = BTree::open_existing(pool, SLOT_FWD)?;
    let mut stats = LookupStats {
        plan: LookupPlan::ExhaustiveReference,
        ..LookupStats::default()
    };
    let mut hits = Vec::new();
    let mut cur: Option<u64> = None;
    let mut cur_skipped = false;
    let mut stored_total = 0u64;
    let mut intersection = 0u64;
    let mut flush = |cur: Option<u64>, stored_total: u64, intersection: u64| {
        if let Some(t) = cur {
            let distance = overlap_distance(intersection, query.total(), stored_total);
            if distance < tau {
                hits.push(LookupHit {
                    tree_id: TreeId(t),
                    distance,
                });
            }
        }
    };
    tree.for_each_range(KEY_MIN, KEY_MAX, |(t, gram), count| {
        stats.rows_read += 1;
        if cur != Some(t) {
            if !cur_skipped {
                flush(cur, stored_total, intersection);
            }
            cur = Some(t);
            cur_skipped = skip.contains(&t);
            if !cur_skipped {
                stats.candidates += 1;
            }
            stored_total = 0;
            intersection = 0;
        }
        stored_total += u64::from(count);
        intersection += u64::from(count.min(query.count(gram)));
        true
    })?;
    if !cur_skipped {
        flush(cur, stored_total, intersection);
    }
    stats.verified = stats.candidates;
    sort_hits(&mut hits);
    stats.hits = hits.len();
    Ok((hits, stats))
}

pub(crate) fn sort_hits(hits: &mut [LookupHit]) {
    hits.sort_by(|a, b| {
        a.distance
            .total_cmp(&b.distance)
            .then_with(|| a.tree_id.cmp(&b.tree_id))
    });
}

/// Result of a whole-store verification: per-relation B+-tree shape checks
/// plus the cross-relation consistency audit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreCheck {
    /// Shape of the forward relation `(treeId, pqg) → cnt`.
    pub forward: BTreeCheck,
    /// Shape of the inverted relation `(pqg, treeId) → cnt`.
    pub inverted: BTreeCheck,
    /// Shape of the totals relation `(treeId, 0) → |I(T)|`.
    pub totals: BTreeCheck,
    /// Number of stored trees (totals rows).
    pub trees: u64,
    /// Elias-Fano posting blocks in the inverted directory.
    pub blocks: u64,
    /// Distinct pack pages holding those blocks.
    pub pack_pages: u64,
}

/// Verifies each relation's B+-tree invariants and that the three relations
/// describe the same forest: every forward row has its mirrored inverted
/// row (and nothing else), every tree's totals row equals the sum of its
/// multiplicities, and no row stores a zero count.
pub(crate) fn verify_relations(pool: &BufferPool) -> Result<StoreCheck> {
    let fwd = BTree::open_existing(pool, SLOT_FWD)?;
    let inv = BTree::open_existing(pool, SLOT_INV)?;
    let tot = BTree::open_existing(pool, SLOT_TOT)?;
    let check = StoreCheck {
        forward: fwd.verify()?,
        inverted: inv.verify()?,
        totals: tot.verify()?,
        trees: 0,
        blocks: 0,
        pack_pages: 0,
    };
    let mut inv_expect: Vec<((u64, u64), u32)> = Vec::new();
    let mut tot_expect: Vec<(u64, u64)> = Vec::new();
    let mut zero_row = false;
    let mut cur: Option<u64> = None;
    let mut acc = 0u64;
    fwd.for_each_range(KEY_MIN, KEY_MAX, |(t, g), c| {
        if c == 0 {
            zero_row = true;
            return false;
        }
        if cur != Some(t) {
            if let Some(done) = cur {
                tot_expect.push((done, acc));
            }
            cur = Some(t);
            acc = 0;
        }
        acc += u64::from(c);
        inv_expect.push(((g, t), c));
        true
    })?;
    if zero_row {
        return Err(StoreError::Corrupt(
            "forward relation stores a zero multiplicity".into(),
        ));
    }
    if let Some(done) = cur {
        tot_expect.push((done, acc));
    }
    inv_expect.sort_unstable_by_key(|&(k, _)| k);
    // The gram filter is advisory — lookups stay correct without it — but
    // a loadable filter must be a superset of the stored grams: a false
    // negative would silently drop candidates.
    if let Some(f) = filter::load(pool)? {
        let mut last: Option<u64> = None;
        for &((g, _), _) in &inv_expect {
            if last == Some(g) {
                continue;
            }
            last = Some(g);
            if !f.contains(g) {
                return Err(StoreError::Corrupt(format!(
                    "gram filter is missing stored gram {g}"
                )));
            }
        }
    }
    // Expanding the directory decodes (and structurally validates) every
    // posting block: CRC, monotonicity, key agreement with the directory.
    let (inv_rows, blocks, pack_pages) = postings::expand_all(pool, &inv)?;
    if inv_rows != inv_expect {
        return Err(StoreError::Corrupt(
            "inverted relation disagrees with forward relation".into(),
        ));
    }
    let mut j = 0usize;
    let mut tot_ok = true;
    tot.for_each_range(KEY_MIN, KEY_MAX, |(t, z), c| {
        tot_ok = z == 0 && tot_expect.get(j) == Some(&(t, u64::from(c)));
        j += 1;
        tot_ok
    })?;
    if !tot_ok || j != tot_expect.len() {
        return Err(StoreError::Corrupt(
            "totals relation disagrees with forward relation".into(),
        ));
    }
    Ok(StoreCheck {
        trees: u64::try_from(tot_expect.len()).unwrap_or(u64::MAX),
        blocks,
        pack_pages: u64::try_from(pack_pages.len()).unwrap_or(u64::MAX),
        ..check
    })
}
