//! Relation-level operations shared by [`crate::index_store::IndexStore`]
//! and [`crate::document::DocumentStore`].
//!
//! Since format version 2 a store file holds **three** B+-tree relations,
//! maintained together inside every transaction:
//!
//! * **forward** (slot [`SLOT_FWD`]) — `(treeId, pqg) → cnt`, the relation
//!   of Figure 4; one contiguous key range per tree;
//! * **inverted** (slot [`SLOT_INV`]) — `(pqg, treeId) → cnt`, the postings
//!   of each gram; one contiguous key range per gram;
//! * **totals** (slot [`SLOT_TOT`]) — `(treeId, 0) → |I(T)|`, the bag size
//!   of every stored tree. A tree has a totals row iff it has forward rows,
//!   so "is this tree stored" is a single point lookup.
//!
//! The inverted relation turns the approximate lookup from a full scan of
//! the forward relation into a candidate merge: probe only the query's
//! distinct grams, accumulate per-candidate bag intersections, prune with
//! the lossless size filter ([`pqgram_core::join::size_filter`]) against
//! the totals table, and verify just the survivors — the same plan the
//! in-memory join proves in `pqgram_core::join`. Only `τ > 1`, where no
//! filter can prune (every pair is within distance 1), falls back to the
//! exhaustive scan.
//!
//! All writers sort their rows and go through
//! [`crate::btree::BTree::apply_batch_sorted`], so one tree's update costs
//! a handful of descents plus sequential leaf edits instead of a random
//! root-to-leaf walk per gram.
//!
//! Since format version 3 the inverted relation is a posting *directory*:
//! short posting lists stay as inline rows, long ones are grouped into
//! partitioned Elias-Fano posting blocks on dedicated pack pages (see
//! `crate::postings`). Older files are migrated in place on open.

use crate::btree::{BTree, BTreeCheck};
use crate::buffer::BufferPool;
use crate::fence::Fence;
use crate::page::PAGE_SIZE_U64;
use crate::pager::{Result, StoreError};
use crate::postings::{self, ProbeCounters};
use pqgram_core::join::{overlap_distance, size_filter};
use pqgram_core::maintain::IndexDelta;
use pqgram_core::{GramKey, LookupHit, PQParams, TreeId, TreeIndex};
use pqgram_tree::{FxHashMap, FxHashSet};

/// Meta slot of the forward relation root: `(treeId, pqg) → cnt`.
pub(crate) const SLOT_FWD: usize = 0;
/// Meta slot of the inverted relation root: `(pqg, treeId) → cnt`.
pub(crate) const SLOT_INV: usize = 4;
/// Meta slot of the totals relation root: `(treeId, 0) → |I(T)|`.
pub(crate) const SLOT_TOT: usize = 5;
/// Meta slot holding the on-disk format version.
pub(crate) const SLOT_VERSION: usize = 6;
/// Current format: dual relations + totals, with the inverted relation
/// stored as a posting directory over Elias-Fano blocks. Version-1 files
/// (slot unset, forward relation only) and version-2 files (row-per-posting
/// inverted relation) are migrated in place on open.
pub(crate) const FORMAT_VERSION: u64 = 3;
/// The previous format: row-per-posting inverted relation.
pub(crate) const FORMAT_VERSION_V2: u64 = 2;

const KEY_MIN: (u64, u64) = (0, 0);
const KEY_MAX: (u64, u64) = (u64::MAX, u64::MAX);

fn total_u32(total: u64) -> Result<u32> {
    u32::try_from(total).map_err(|_| {
        StoreError::Corrupt(format!("bag size {total} exceeds the u32 totals encoding"))
    })
}

/// Creates the three relation roots and stamps the format version. Called
/// once per `create` (the pager journals meta slots with the header).
// analyze: txn-exempt(store bootstrap: runs during create before any reader can open the file; callers treat a failed create as fatal and discard the half-built store)
pub(crate) fn init_relations(pool: &BufferPool) -> Result<()> {
    BTree::open(pool, SLOT_FWD)?;
    BTree::open(pool, SLOT_INV)?;
    BTree::open(pool, SLOT_TOT)?;
    pool.set_meta(SLOT_VERSION, FORMAT_VERSION)
}

/// Checks the format version on open, migrating older files in place inside
/// one transaction. A version-1 file (forward relation only) gets its
/// inverted directory and totals relation rebuilt; a version-2 file
/// (row-per-posting inverted relation) gets only its inverted relation
/// re-encoded as a posting directory. Returns `true` if a migration ran.
// analyze: entrypoint(recovery)
pub(crate) fn ensure_format(pool: &BufferPool) -> Result<bool> {
    let version = pool.meta(SLOT_VERSION);
    let migrate: fn(&BufferPool) -> Result<()> = match version {
        FORMAT_VERSION => return Ok(false),
        0 => |pool| build_secondary_relations(pool, true),
        FORMAT_VERSION_V2 => |pool| {
            crate::btree::free_tree(pool, SLOT_INV)?;
            rebuild_inverted(pool, true)
        },
        v => {
            return Err(StoreError::Corrupt(format!(
                "store format version {v} is newer than this build (reads up to {FORMAT_VERSION})"
            )))
        }
    };
    pool.begin()?;
    let migration = || -> Result<()> {
        migrate(pool)?;
        pool.set_meta(SLOT_VERSION, FORMAT_VERSION)
    };
    match migration() {
        Ok(()) => pool.commit().map(|()| true),
        Err(e) => {
            pool.rollback()?;
            Err(e)
        }
    }
}

/// Bulk-loads all three relations from rows sorted strictly ascending by
/// `(treeId, pqg)`; the relations must be empty. Returns the row count.
/// `compress` selects the posting-directory encoding (`true`, the default
/// path) or row-per-posting inline rows (the ablation path).
pub(crate) fn bulk_load_relations(
    pool: &BufferPool,
    rows: &[((u64, u64), u32)],
    compress: bool,
) -> Result<u64> {
    let n = BTree::open(pool, SLOT_FWD)?.bulk_load(rows.iter().copied())?;
    build_secondary_relations(pool, compress)?;
    Ok(n)
}

/// One ordered scan of the forward relation yielding the inverted rows
/// (sorted by `(pqg, treeId)`) and per-tree totals.
#[allow(clippy::type_complexity)]
fn forward_derived_rows(pool: &BufferPool) -> Result<(Vec<((u64, u64), u32)>, Vec<(u64, u64)>)> {
    let fwd = BTree::open(pool, SLOT_FWD)?;
    let mut inv_rows: Vec<((u64, u64), u32)> = Vec::new();
    let mut totals: Vec<(u64, u64)> = Vec::new();
    let mut cur: Option<u64> = None;
    let mut acc = 0u64;
    fwd.for_each_range(KEY_MIN, KEY_MAX, |(t, g), c| {
        if cur != Some(t) {
            if let Some(done) = cur {
                totals.push((done, acc));
            }
            cur = Some(t);
            acc = 0;
        }
        acc += u64::from(c);
        inv_rows.push(((g, t), c));
        true
    })?;
    if let Some(done) = cur {
        totals.push((done, acc));
    }
    inv_rows.sort_unstable_by_key(|&(k, _)| k);
    Ok((inv_rows, totals))
}

/// Rebuilds the inverted directory (which must be empty) from one ordered
/// scan of the forward relation.
fn rebuild_inverted(pool: &BufferPool, compress: bool) -> Result<()> {
    let (inv_rows, _) = forward_derived_rows(pool)?;
    let inv = BTree::open(pool, SLOT_INV)?;
    postings::bulk_load_inverted(pool, &inv, &inv_rows, compress)
}

/// Rebuilds the inverted and totals relations (which must be empty) from
/// one ordered scan of the forward relation.
fn build_secondary_relations(pool: &BufferPool, compress: bool) -> Result<()> {
    let (inv_rows, totals) = forward_derived_rows(pool)?;
    let inv = BTree::open(pool, SLOT_INV)?;
    postings::bulk_load_inverted(pool, &inv, &inv_rows, compress)?;
    let mut tot_rows: Vec<((u64, u64), u32)> = Vec::with_capacity(totals.len());
    for (t, total) in totals {
        tot_rows.push(((t, 0), total_u32(total)?));
    }
    BTree::open(pool, SLOT_TOT)?.bulk_load(tot_rows)?;
    Ok(())
}

/// Deletes every row of `id` from all three relations.
pub(crate) fn delete_tree_entries(pool: &BufferPool, id: TreeId) -> Result<()> {
    let fwd = BTree::open(pool, SLOT_FWD)?;
    let mut grams = Vec::new();
    fwd.for_each_range((id.0, 0), (id.0, u64::MAX), |(_, g), _| {
        grams.push(g);
        true
    })?;
    if grams.is_empty() {
        return Ok(());
    }
    // The range scan yields grams ascending: the batch is sorted.
    fwd.apply_batch_sorted(grams.iter().map(|&g| ((id.0, g), None)))?;
    let inv = BTree::open(pool, SLOT_INV)?;
    for &g in &grams {
        if !postings::remove_posting(pool, &inv, g, id.0)? {
            return Err(StoreError::Corrupt(format!(
                "inverted relation missing posting ({g}, {}) during delete",
                id.0
            )));
        }
    }
    BTree::open(pool, SLOT_TOT)?.delete((id.0, 0))?;
    Ok(())
}

/// Inserts all rows of `index` under `id` into all three relations (caller
/// clears old rows first). An empty index stores nothing — empty trees are
/// not representable in the relation, matching version 1.
pub(crate) fn put_tree_entries(pool: &BufferPool, id: TreeId, index: &TreeIndex) -> Result<()> {
    let mut rows: Vec<(GramKey, u32)> = index.iter().collect();
    if rows.is_empty() {
        return Ok(());
    }
    rows.sort_unstable_by_key(|&(g, _)| g);
    BTree::open(pool, SLOT_FWD)?
        .apply_batch_sorted(rows.iter().map(|&(g, c)| ((id.0, g), Some(c))))?;
    let inv = BTree::open(pool, SLOT_INV)?;
    for &(g, c) in &rows {
        postings::upsert_posting(pool, &inv, g, id.0, c)?;
    }
    BTree::open(pool, SLOT_TOT)?.insert((id.0, 0), total_u32(index.total())?)?;
    Ok(())
}

/// True if `id` is stored: one point lookup in the totals relation.
pub(crate) fn contains_tree(pool: &BufferPool, id: TreeId) -> Result<bool> {
    Ok(BTree::open_existing(pool, SLOT_TOT)?
        .get((id.0, 0))?
        .is_some())
}

/// Materializes the stored index of `id` (`None` if no rows).
pub(crate) fn tree_index(
    pool: &BufferPool,
    params: PQParams,
    id: TreeId,
) -> Result<Option<TreeIndex>> {
    let tree = BTree::open_existing(pool, SLOT_FWD)?;
    let mut index = TreeIndex::empty(params);
    tree.for_each_range((id.0, 0), (id.0, u64::MAX), |(_, gram), count| {
        index.add_n(gram, count);
        true
    })?;
    Ok((index.total() > 0).then_some(index))
}

/// All stored tree ids, ascending: one ordered scan of the totals relation
/// (one row per tree) instead of a skip scan over the forward relation.
pub(crate) fn tree_ids(pool: &BufferPool) -> Result<Vec<TreeId>> {
    let tot = BTree::open_existing(pool, SLOT_TOT)?;
    let mut ids = Vec::new();
    tot.for_each_range(KEY_MIN, KEY_MAX, |(t, _), _| {
        ids.push(TreeId(t));
        true
    })?;
    Ok(ids)
}

/// Applies `I ← I \ I⁻ ⊎ I⁺` to the rows of `id` across all three
/// relations. Returns the first gram (in `delta.removals` order) whose
/// removal failed — the caller rolls the transaction back — or `None` on
/// success.
pub(crate) fn apply_delta_rows(
    pool: &BufferPool,
    id: TreeId,
    delta: &IndexDelta,
) -> Result<Option<GramKey>> {
    let fwd = BTree::open(pool, SLOT_FWD)?;
    // Current multiplicity of every touched gram (one point read each).
    let mut stored: FxHashMap<GramKey, u32> = FxHashMap::default();
    for &g in delta.removals.iter().chain(&delta.additions) {
        if let std::collections::hash_map::Entry::Vacant(e) = stored.entry(g) {
            e.insert(fwd.get((id.0, g))?.unwrap_or(0));
        }
    }
    // Replay removals in order *before* writing anything, so the reported
    // gram matches the one-at-a-time semantics of version 1.
    let mut after = stored.clone();
    for &g in &delta.removals {
        match after.get_mut(&g) {
            Some(c) if *c > 0 => *c -= 1,
            _ => return Ok(Some(g)),
        }
    }
    for &g in &delta.additions {
        if let Some(c) = after.get_mut(&g) {
            *c += 1;
        }
    }
    // Net row mutations, sorted by gram; unchanged multiplicities drop out.
    let mut ops: Vec<(GramKey, Option<u32>)> = after
        .iter()
        .filter(|&(g, &c)| stored.get(g) != Some(&c))
        .map(|(&g, &c)| (g, (c > 0).then_some(c)))
        .collect();
    ops.sort_unstable_by_key(|&(g, _)| g);
    fwd.apply_batch_sorted(ops.iter().map(|&(g, v)| ((id.0, g), v)))?;
    let inv = BTree::open(pool, SLOT_INV)?;
    for &(g, v) in &ops {
        match v {
            Some(c) => postings::upsert_posting(pool, &inv, g, id.0, c)?,
            None => {
                if !postings::remove_posting(pool, &inv, g, id.0)? {
                    return Err(StoreError::Corrupt(format!(
                        "inverted relation missing posting ({g}, {}) during delta",
                        id.0
                    )));
                }
            }
        }
    }
    let tot = BTree::open(pool, SLOT_TOT)?;
    let old_total = u64::from(tot.get((id.0, 0))?.unwrap_or(0));
    let removed = u64::try_from(delta.removals.len()).unwrap_or(u64::MAX);
    let added = u64::try_from(delta.additions.len()).unwrap_or(u64::MAX);
    let Some(new_total) = (old_total + added).checked_sub(removed) else {
        return Err(StoreError::Corrupt(format!(
            "delta removes more grams than {id:?} holds (total {old_total})"
        )));
    };
    if new_total == 0 {
        tot.delete((id.0, 0))?;
    } else {
        tot.insert((id.0, 0), total_u32(new_total)?)?;
    }
    Ok(None)
}

/// Source id used in [`LookupStats::by_source`] for the main store file.
/// Segment sources report their sequence number instead.
pub const MAIN_SOURCE: u64 = u64::MAX;

/// Which access plan a lookup executed.
///
/// The `τ > 1` cliff: at thresholds above 1 every pair of trees is within
/// distance 1 ≤ τ, so neither the size filter nor the candidate merge can
/// prune anything and the store silently falls back to a full scan of the
/// forward relation. Costs jump from "rows sharing a gram with the query"
/// to "every row in the store" — see DESIGN.md §14.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LookupPlan {
    /// Candidate merge over the inverted posting directory (`τ ≤ 1`).
    #[default]
    CandidateMerge,
    /// Exhaustive forward scan requested explicitly (benchmark reference).
    ExhaustiveReference,
    /// Exhaustive forward scan forced by `τ > 1`, where no filter prunes.
    TauExhaustiveFallback,
}

/// How the inverted relation is encoded at bulk-load time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum InvertedEncoding {
    /// Partitioned Elias-Fano posting blocks (the format-v3 default).
    #[default]
    PostingBlocks,
    /// One directory row per posting (the `--no-compress` ablation; still a
    /// valid v3 store, matching the v2 footprint).
    RowPerPosting,
}

/// On-disk footprint of one store's relations, in bytes (whole pages).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RelationBytes {
    /// Forward relation B+-tree pages.
    pub forward: u64,
    /// Inverted posting-directory B+-tree pages.
    pub inverted_directory: u64,
    /// Pack pages holding Elias-Fano posting blocks.
    pub posting_blocks: u64,
    /// Totals relation B+-tree pages.
    pub totals: u64,
}

impl RelationBytes {
    /// Bytes of the whole inverted relation: directory plus posting blocks.
    pub fn inverted_total(&self) -> u64 {
        self.inverted_directory + self.posting_blocks
    }

    /// Bytes across all relations.
    pub fn total(&self) -> u64 {
        self.forward + self.inverted_directory + self.posting_blocks + self.totals
    }
}

/// Measures the on-disk footprint of each relation by walking its pages.
pub(crate) fn relation_bytes(pool: &BufferPool) -> Result<RelationBytes> {
    let fwd = BTree::open_existing(pool, SLOT_FWD)?;
    let inv = BTree::open_existing(pool, SLOT_INV)?;
    let tot = BTree::open_existing(pool, SLOT_TOT)?;
    let (_, _, pack_pages) = postings::expand_all(pool, &inv)?;
    Ok(RelationBytes {
        forward: fwd.page_span()? * PAGE_SIZE_U64,
        inverted_directory: inv.page_span()? * PAGE_SIZE_U64,
        posting_blocks: u64::try_from(pack_pages.len()).unwrap_or(u64::MAX) * PAGE_SIZE_U64,
        totals: tot.page_span()? * PAGE_SIZE_U64,
    })
}

/// Access-path and work counters of one [`lookup_with_stats`] call.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LookupStats {
    /// B+-tree rows read: posting rows plus one totals row per candidate
    /// on the inverted plan, every forward row on the scan plan.
    pub rows_read: u64,
    /// Distinct query grams probed (inverted plan only).
    pub grams_probed: usize,
    /// Trees sharing at least one gram with the query (scan plan: every
    /// stored tree).
    pub candidates: usize,
    /// Candidates surviving the size filter whose distance was computed.
    pub verified: usize,
    /// Results below `tau`.
    pub hits: usize,
    /// `true` if the candidate-merge plan ran, `false` for the exhaustive
    /// scan (`τ > 1`).
    pub used_inverted: bool,
    /// Which access plan ran (finer-grained than [`Self::used_inverted`]:
    /// distinguishes the explicit reference scan from the `τ > 1` cliff).
    pub plan: LookupPlan,
    /// Elias-Fano posting blocks decoded during the probe phase.
    pub blocks_decoded: u64,
    /// Posting blocks skipped on per-block metadata without decoding.
    pub blocks_skipped: u64,
    /// Posting-block payload bytes run through the decoder.
    pub bytes_decoded: u64,
    /// Rows read per source, in probe order: one `(source, rows)` entry per
    /// live segment (keyed by its sequence number) and one for the main
    /// file (keyed by [`MAIN_SOURCE`]). A single-file store reports exactly
    /// one [`MAIN_SOURCE`] entry.
    pub by_source: Vec<(u64, u64)>,
}

impl LookupStats {
    /// Folds probe-phase decode counters into the stats.
    pub(crate) fn absorb(&mut self, counters: &ProbeCounters) {
        self.rows_read += counters.rows;
        self.blocks_decoded += counters.blocks_decoded;
        self.blocks_skipped += counters.blocks_skipped;
        self.bytes_decoded += counters.bytes_decoded;
    }
}

/// The approximate lookup, routed by threshold: the candidate-merge plan
/// over the inverted relation for `τ ≤ 1`, the exhaustive forward scan for
/// `τ > 1` (where every stored tree is within distance 1 ≤ τ and no filter
/// can prune — mirroring `pqgram_core::join`). `threads > 1` fans the
/// exact-distance verification phase out over that many workers.
pub(crate) fn lookup_with_stats(
    pool: &BufferPool,
    query: &TreeIndex,
    tau: f64,
    threads: usize,
) -> Result<(Vec<LookupHit>, LookupStats)> {
    let skip = FxHashSet::default();
    let (hits, mut stats) = if tau > 1.0 {
        let (hits, mut stats) = lookup_scan_masked(pool, query, tau, &skip)?;
        stats.plan = LookupPlan::TauExhaustiveFallback;
        (hits, stats)
    } else {
        lookup_inverted_masked(pool, None, query, tau, threads, &skip)?
    };
    stats.by_source = vec![(MAIN_SOURCE, stats.rows_read)];
    Ok((hits, stats))
}

/// Candidate-merge plan: range-probe the inverted relation for each
/// distinct query gram, accumulating per-tree bag intersections; then
/// size-filter each candidate against the totals relation and verify the
/// survivors. Reads only rows of trees sharing a gram with the query.
///
/// The verification phase (one totals read + size filter + exact distance
/// per candidate) touches disjoint rows per candidate, so it fans out over
/// `pqgram_core::par` in deterministic chunk order: the merged hit list is
/// byte-identical to the serial plan for any thread count.
///
/// `skip` masks out trees owned by a newer source in a segmented store:
/// their posting rows are still read (and counted) during the probe, but
/// they contribute no candidate. An empty mask is the plain single-file
/// plan, byte for byte.
///
/// With `fence` set (immutable segment sources), probes answer from the
/// learned fence arrays instead of descending the directory B+-tree.
pub(crate) fn lookup_inverted_masked(
    pool: &BufferPool,
    fence: Option<&Fence>,
    query: &TreeIndex,
    tau: f64,
    threads: usize,
    skip: &FxHashSet<u64>,
) -> Result<(Vec<LookupHit>, LookupStats)> {
    let tot = BTree::open_existing(pool, SLOT_TOT)?;
    let mut stats = LookupStats {
        used_inverted: true,
        plan: LookupPlan::CandidateMerge,
        ..LookupStats::default()
    };
    let mut probe: Vec<(GramKey, u32)> = query.iter().collect();
    probe.sort_unstable_by_key(|&(g, _)| g);
    stats.grams_probed = probe.len();
    let mut shared: FxHashMap<u64, u64> = FxHashMap::default();
    let mut counters = ProbeCounters::default();
    {
        let mut emit = |qc: u32, t: u64, c: u32| {
            if !skip.contains(&t) {
                *shared.entry(t).or_insert(0) += u64::from(qc.min(c));
            }
            true
        };
        let mut cache = postings::BlockCache::default();
        match fence {
            Some(fence) => {
                for &(g, qc) in &probe {
                    fence.for_each_posting(pool, g, &mut cache, &mut counters, |t, c| {
                        emit(qc, t, c)
                    })?;
                }
            }
            None => {
                let inv = BTree::open_existing(pool, SLOT_INV)?;
                for &(g, qc) in &probe {
                    postings::for_each_posting(
                        pool,
                        &inv,
                        g,
                        &mut cache,
                        &mut counters,
                        |t, c| emit(qc, t, c),
                    )?;
                }
            }
        }
    }
    stats.absorb(&counters);
    stats.candidates = shared.len();
    let mut candidates: Vec<(u64, u64)> = shared.into_iter().collect();
    candidates.sort_unstable_by_key(|&(t, _)| t);
    let mut hits = Vec::new();
    let chunks = pqgram_core::par::map_chunks(&candidates, threads, |part| {
        let mut out = Vec::new();
        let mut rows_read = 0u64;
        let mut verified = 0usize;
        for &(t, overlap) in part {
            let Some(total) = tot.get((t, 0))? else {
                return Err(StoreError::Corrupt(format!(
                    "tree {t} has inverted rows but no totals row"
                )));
            };
            rows_read += 1;
            if !size_filter(query.total(), u64::from(total), tau) {
                continue;
            }
            verified += 1;
            let distance = overlap_distance(overlap, query.total(), u64::from(total));
            if distance < tau {
                out.push(LookupHit {
                    tree_id: TreeId(t),
                    distance,
                });
            }
        }
        Ok((out, rows_read, verified))
    });
    for chunk in chunks {
        let (out, rows_read, verified) = chunk?;
        hits.extend(out);
        stats.rows_read += rows_read;
        stats.verified += verified;
    }
    sort_hits(&mut hits);
    stats.hits = hits.len();
    Ok((hits, stats))
}

/// One ordered scan of the forward relation computing the distance of
/// `query` to every stored tree — the version-1 plan, kept as the `τ > 1`
/// fallback and as the reference side of the benchmark harness.
pub(crate) fn lookup_scan_with_stats(
    pool: &BufferPool,
    query: &TreeIndex,
    tau: f64,
) -> Result<(Vec<LookupHit>, LookupStats)> {
    let skip = FxHashSet::default();
    let (hits, mut stats) = lookup_scan_masked(pool, query, tau, &skip)?;
    stats.by_source = vec![(MAIN_SOURCE, stats.rows_read)];
    Ok((hits, stats))
}

/// The exhaustive forward scan with a mask: rows of trees in `skip` are
/// read (and counted) but never verified or reported. An empty mask is the
/// plain single-file scan, byte for byte.
pub(crate) fn lookup_scan_masked(
    pool: &BufferPool,
    query: &TreeIndex,
    tau: f64,
    skip: &FxHashSet<u64>,
) -> Result<(Vec<LookupHit>, LookupStats)> {
    let tree = BTree::open_existing(pool, SLOT_FWD)?;
    let mut stats = LookupStats {
        plan: LookupPlan::ExhaustiveReference,
        ..LookupStats::default()
    };
    let mut hits = Vec::new();
    let mut cur: Option<u64> = None;
    let mut cur_skipped = false;
    let mut stored_total = 0u64;
    let mut intersection = 0u64;
    let mut flush = |cur: Option<u64>, stored_total: u64, intersection: u64| {
        if let Some(t) = cur {
            let distance = overlap_distance(intersection, query.total(), stored_total);
            if distance < tau {
                hits.push(LookupHit {
                    tree_id: TreeId(t),
                    distance,
                });
            }
        }
    };
    tree.for_each_range(KEY_MIN, KEY_MAX, |(t, gram), count| {
        stats.rows_read += 1;
        if cur != Some(t) {
            if !cur_skipped {
                flush(cur, stored_total, intersection);
            }
            cur = Some(t);
            cur_skipped = skip.contains(&t);
            if !cur_skipped {
                stats.candidates += 1;
            }
            stored_total = 0;
            intersection = 0;
        }
        stored_total += u64::from(count);
        intersection += u64::from(count.min(query.count(gram)));
        true
    })?;
    if !cur_skipped {
        flush(cur, stored_total, intersection);
    }
    stats.verified = stats.candidates;
    sort_hits(&mut hits);
    stats.hits = hits.len();
    Ok((hits, stats))
}

pub(crate) fn sort_hits(hits: &mut [LookupHit]) {
    hits.sort_by(|a, b| {
        a.distance
            .total_cmp(&b.distance)
            .then_with(|| a.tree_id.cmp(&b.tree_id))
    });
}

/// Result of a whole-store verification: per-relation B+-tree shape checks
/// plus the cross-relation consistency audit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreCheck {
    /// Shape of the forward relation `(treeId, pqg) → cnt`.
    pub forward: BTreeCheck,
    /// Shape of the inverted relation `(pqg, treeId) → cnt`.
    pub inverted: BTreeCheck,
    /// Shape of the totals relation `(treeId, 0) → |I(T)|`.
    pub totals: BTreeCheck,
    /// Number of stored trees (totals rows).
    pub trees: u64,
    /// Elias-Fano posting blocks in the inverted directory.
    pub blocks: u64,
    /// Distinct pack pages holding those blocks.
    pub pack_pages: u64,
}

/// Verifies each relation's B+-tree invariants and that the three relations
/// describe the same forest: every forward row has its mirrored inverted
/// row (and nothing else), every tree's totals row equals the sum of its
/// multiplicities, and no row stores a zero count.
pub(crate) fn verify_relations(pool: &BufferPool) -> Result<StoreCheck> {
    let fwd = BTree::open_existing(pool, SLOT_FWD)?;
    let inv = BTree::open_existing(pool, SLOT_INV)?;
    let tot = BTree::open_existing(pool, SLOT_TOT)?;
    let check = StoreCheck {
        forward: fwd.verify()?,
        inverted: inv.verify()?,
        totals: tot.verify()?,
        trees: 0,
        blocks: 0,
        pack_pages: 0,
    };
    let mut inv_expect: Vec<((u64, u64), u32)> = Vec::new();
    let mut tot_expect: Vec<(u64, u64)> = Vec::new();
    let mut zero_row = false;
    let mut cur: Option<u64> = None;
    let mut acc = 0u64;
    fwd.for_each_range(KEY_MIN, KEY_MAX, |(t, g), c| {
        if c == 0 {
            zero_row = true;
            return false;
        }
        if cur != Some(t) {
            if let Some(done) = cur {
                tot_expect.push((done, acc));
            }
            cur = Some(t);
            acc = 0;
        }
        acc += u64::from(c);
        inv_expect.push(((g, t), c));
        true
    })?;
    if zero_row {
        return Err(StoreError::Corrupt(
            "forward relation stores a zero multiplicity".into(),
        ));
    }
    if let Some(done) = cur {
        tot_expect.push((done, acc));
    }
    inv_expect.sort_unstable_by_key(|&(k, _)| k);
    // Expanding the directory decodes (and structurally validates) every
    // posting block: CRC, monotonicity, key agreement with the directory.
    let (inv_rows, blocks, pack_pages) = postings::expand_all(pool, &inv)?;
    if inv_rows != inv_expect {
        return Err(StoreError::Corrupt(
            "inverted relation disagrees with forward relation".into(),
        ));
    }
    let mut j = 0usize;
    let mut tot_ok = true;
    tot.for_each_range(KEY_MIN, KEY_MAX, |(t, z), c| {
        tot_ok = z == 0 && tot_expect.get(j) == Some(&(t, u64::from(c)));
        j += 1;
        tot_ok
    })?;
    if !tot_ok || j != tot_expect.len() {
        return Err(StoreError::Corrupt(
            "totals relation disagrees with forward relation".into(),
        ));
    }
    Ok(StoreCheck {
        trees: u64::try_from(tot_expect.len()).unwrap_or(u64::MAX),
        blocks,
        pack_pages: u64::try_from(pack_pages.len()).unwrap_or(u64::MAX),
        ..check
    })
}
