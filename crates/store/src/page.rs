//! Fixed-size pages and typed accessors.

use std::fmt;

/// Page size in bytes. 4 KiB matches common filesystem block sizes.
pub const PAGE_SIZE: usize = 4096;

/// [`PAGE_SIZE`] widened once for file-offset arithmetic, so on-disk-format
/// code never needs a bare `as` cast (enforced by `cargo xtask lint`).
pub const PAGE_SIZE_U64: u64 = PAGE_SIZE as u64;

/// Identifier of a page within the store file (page 0 is the header).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl PageId {
    /// Sentinel for "no page" (e.g. end of a leaf chain or free list).
    pub const NONE: PageId = PageId(u32::MAX);

    /// Byte offset of this page in the file.
    #[inline]
    pub fn offset(self) -> u64 {
        u64::from(self.0) * PAGE_SIZE_U64
    }

    /// This id as a container index. The single sanctioned u32→usize
    /// widening in the store (usize is at least 32 bits on every supported
    /// target).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == PageId::NONE {
            write!(f, "page(none)")
        } else {
            write!(f, "page({})", self.0)
        }
    }
}

/// A heap-allocated page image with little-endian accessors.
#[derive(Clone, PartialEq, Eq)]
pub struct PageBuf {
    bytes: Box<[u8; PAGE_SIZE]>,
}

impl Default for PageBuf {
    fn default() -> Self {
        Self::zeroed()
    }
}

impl PageBuf {
    /// An all-zero page.
    // analyze: trusted(infallible: a PAGE_SIZE vec always converts to the boxed array)
    pub fn zeroed() -> Self {
        PageBuf {
            bytes: vec![0u8; PAGE_SIZE]
                .into_boxed_slice()
                .try_into()
                .expect("size"),
        }
    }

    /// Builds a page from raw bytes (must be exactly [`PAGE_SIZE`]).
    // analyze: trusted(documented contract: input must be exactly PAGE_SIZE bytes; all callers pass a PAGE_SIZE buffer)
    pub fn from_bytes(bytes: &[u8]) -> Self {
        assert_eq!(bytes.len(), PAGE_SIZE);
        let mut page = Self::zeroed();
        page.bytes.copy_from_slice(bytes);
        page
    }

    /// Read-only view of the whole page.
    #[inline]
    pub fn as_bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.bytes
    }

    /// Mutable view of the whole page.
    #[inline]
    pub fn as_bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.bytes
    }

    /// Reads a `u8` at `off`.
    #[inline]
    // analyze: trusted(const offsets bounded below PAGE_SIZE at every call site)
    pub fn get_u8(&self, off: usize) -> u8 {
        self.bytes[off]
    }

    /// Writes a `u8` at `off`.
    #[inline]
    // analyze: trusted(const offsets bounded below PAGE_SIZE at every call site)
    pub fn put_u8(&mut self, off: usize, v: u8) {
        self.bytes[off] = v;
    }

    /// Reads a little-endian `u16` at `off`.
    #[inline]
    // analyze: trusted(const offsets bounded below PAGE_SIZE at every call site)
    pub fn get_u16(&self, off: usize) -> u16 {
        u16::from_le_bytes(self.bytes[off..off + 2].try_into().expect("in bounds"))
    }

    /// Writes a little-endian `u16` at `off`.
    #[inline]
    // analyze: trusted(const offsets bounded below PAGE_SIZE at every call site)
    pub fn put_u16(&mut self, off: usize, v: u16) {
        self.bytes[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads a little-endian `u32` at `off`.
    #[inline]
    // analyze: trusted(const offsets bounded below PAGE_SIZE at every call site)
    pub fn get_u32(&self, off: usize) -> u32 {
        u32::from_le_bytes(self.bytes[off..off + 4].try_into().expect("in bounds"))
    }

    /// Writes a little-endian `u32` at `off`.
    #[inline]
    // analyze: trusted(const offsets bounded below PAGE_SIZE at every call site)
    pub fn put_u32(&mut self, off: usize, v: u32) {
        self.bytes[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads a little-endian `u64` at `off`.
    #[inline]
    // analyze: trusted(const offsets bounded below PAGE_SIZE at every call site)
    pub fn get_u64(&self, off: usize) -> u64 {
        u64::from_le_bytes(self.bytes[off..off + 8].try_into().expect("in bounds"))
    }

    /// Writes a little-endian `u64` at `off`.
    #[inline]
    // analyze: trusted(const offsets bounded below PAGE_SIZE at every call site)
    pub fn put_u64(&mut self, off: usize, v: u64) {
        self.bytes[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads a [`PageId`] at `off`.
    #[inline]
    pub fn get_page_id(&self, off: usize) -> PageId {
        PageId(self.get_u32(off))
    }

    /// Writes a [`PageId`] at `off`.
    #[inline]
    pub fn put_page_id(&mut self, off: usize, v: PageId) {
        self.put_u32(off, v.0);
    }

    /// Copies `src` to `off`.
    #[inline]
    // analyze: trusted(offset plus slice length bounded by PAGE_SIZE at every call site)
    pub fn put_slice(&mut self, off: usize, src: &[u8]) {
        self.bytes[off..off + src.len()].copy_from_slice(src);
    }

    /// Borrows `len` bytes at `off`.
    #[inline]
    // analyze: trusted(offset plus length bounded by PAGE_SIZE at every call site)
    pub fn slice(&self, off: usize, len: usize) -> &[u8] {
        &self.bytes[off..off + len]
    }

    /// Moves `len` bytes from `src_off` to `dst_off` within the page
    /// (memmove semantics; used for in-page entry shifts).
    // analyze: trusted(shift ranges bounded by PAGE_SIZE at every call site)
    pub fn shift(&mut self, src_off: usize, dst_off: usize, len: usize) {
        self.bytes.copy_within(src_off..src_off + len, dst_off);
    }
}

impl fmt::Debug for PageBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PageBuf({:02x?}…)", &self.bytes[..8])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_roundtrip() {
        let mut p = PageBuf::zeroed();
        p.put_u8(0, 0xab);
        p.put_u16(2, 0x1234);
        p.put_u32(4, 0xdead_beef);
        p.put_u64(8, 0x0123_4567_89ab_cdef);
        p.put_page_id(16, PageId(77));
        assert_eq!(p.get_u8(0), 0xab);
        assert_eq!(p.get_u16(2), 0x1234);
        assert_eq!(p.get_u32(4), 0xdead_beef);
        assert_eq!(p.get_u64(8), 0x0123_4567_89ab_cdef);
        assert_eq!(p.get_page_id(16), PageId(77));
    }

    #[test]
    fn shift_moves_overlapping_ranges() {
        let mut p = PageBuf::zeroed();
        p.put_slice(100, &[1, 2, 3, 4, 5]);
        p.shift(100, 102, 5);
        assert_eq!(p.slice(100, 7), &[1, 2, 1, 2, 3, 4, 5]);
        p.shift(102, 101, 5);
        assert_eq!(p.slice(101, 5), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn from_bytes_roundtrip() {
        let mut raw = vec![0u8; PAGE_SIZE];
        raw[17] = 42;
        let p = PageBuf::from_bytes(&raw);
        assert_eq!(p.get_u8(17), 42);
        assert_eq!(p.as_bytes()[..], raw[..]);
    }

    #[test]
    fn page_id_offset() {
        assert_eq!(PageId(0).offset(), 0);
        assert_eq!(PageId(3).offset(), 3 * 4096);
    }
}
