//! The manifest file of a segmented store — the single transactional
//! commit point of the whole engine.
//!
//! Everything else on disk (the main file, every segment) is bulk-built,
//! synced, and immutable; only the manifest mutates, and only inside the
//! pager's rollback-journal transactions. The set of files that *count* is
//! therefore always exactly what one committed manifest state says:
//!
//! * slot [`SLOT_SEGS`] — B+-tree `(seq, 0) → 1`, the live segment list;
//! * slots `META_P`/`META_Q` — the forest's pq-gram parameters;
//! * slot [`SLOT_GEN`] — the current main-file generation `g`
//!   (`<base>.main.<g>`);
//! * slot [`SLOT_HWM`] — the segment sequence high-water mark: every
//!   sequence number ever handed out is `< hwm`. Sequences are reserved
//!   **durably before** any segment file is created, so a `.seg.<s>` file
//!   with `s ≥ hwm` cannot exist and every on-disk segment not in the live
//!   list is a dead orphan the open-time sweep may delete.
//!
//! A crash at any point therefore recovers to exactly the pre- or
//! post-commit file set: the journal restores the manifest, and the sweep
//! removes files only the losing side referenced.

use crate::btree::BTree;
use crate::buffer::{BufferPool, DEFAULT_CAPACITY};
use crate::index_store::{META_KIND, META_P, META_Q};
use crate::pager::{Pager, Result, StoreError};
use crate::vfs::Vfs;
use pqgram_core::PQParams;
use std::path::Path;
use std::sync::Arc;

/// Kind marker of a manifest file (slot [`META_KIND`]).
pub(crate) const KIND_MANIFEST: u64 = 3;

/// Meta slot of the live-segment list root: `(seq, 0) → 1`.
const SLOT_SEGS: usize = 0;
/// Meta slot of the current main-file generation.
const SLOT_GEN: usize = 3;
/// Meta slot of the segment sequence high-water mark.
const SLOT_HWM: usize = 4;
/// Meta slot of the manifest format version.
const SLOT_VERSION: usize = 6;
/// Current manifest format.
const MANIFEST_VERSION: u64 = 1;

/// The open manifest of one segmented store.
pub(crate) struct Manifest {
    pool: BufferPool,
    params: PQParams,
}

impl Manifest {
    /// Creates a fresh manifest (generation 0, no segments, hwm 0). The
    /// caller builds `<base>.main.0` **before** this, so a committed
    /// manifest always implies its main file exists.
    // analyze: txn-exempt(store bootstrap: writes to a file created in this call that no reader can open yet; a failed create is fatal and the file is discarded)
    pub(crate) fn create(path: &Path, params: PQParams, vfs: Arc<dyn Vfs>) -> Result<Manifest> {
        let pool = BufferPool::new(Pager::create_with(path, vfs)?, DEFAULT_CAPACITY);
        pool.set_meta(META_P, params.p() as u64)?;
        pool.set_meta(META_Q, params.q() as u64)?;
        pool.set_meta(META_KIND, KIND_MANIFEST)?;
        pool.set_meta(SLOT_VERSION, MANIFEST_VERSION)?;
        BTree::open(&pool, SLOT_SEGS)?;
        pool.sync()?;
        Ok(Manifest { pool, params })
    }

    /// Opens a manifest, running pager crash recovery first.
    // analyze: entrypoint(recovery)
    pub(crate) fn open(path: &Path, vfs: Arc<dyn Vfs>) -> Result<Manifest> {
        let pool = BufferPool::new(Pager::open_with(path, vfs)?, DEFAULT_CAPACITY);
        if pool.meta(META_KIND) != KIND_MANIFEST {
            return Err(StoreError::Corrupt(
                "not a segmented-store manifest (kind marker mismatch; single-file stores open \
                 with IndexStore)"
                    .into(),
            ));
        }
        let version = pool.meta(SLOT_VERSION);
        if version != MANIFEST_VERSION {
            return Err(StoreError::Corrupt(format!(
                "manifest format version {version} (this build reads {MANIFEST_VERSION})"
            )));
        }
        let (p, q) = (pool.meta(META_P) as usize, pool.meta(META_Q) as usize);
        let Some(params) = PQParams::try_new(p, q) else {
            return Err(StoreError::Corrupt(
                "missing pq parameters in manifest header".into(),
            ));
        };
        Ok(Manifest { pool, params })
    }

    pub(crate) fn params(&self) -> PQParams {
        self.params
    }

    /// The current main-file generation. Raw manifest state: callers must
    /// not trust it as a loop bound or arithmetic operand unchecked.
    // analyze: untrusted-source
    pub(crate) fn generation(&self) -> u64 {
        self.pool.meta(SLOT_GEN)
    }

    /// The segment sequence high-water mark (first unreserved sequence).
    /// Raw manifest state — see [`generation`](Self::generation).
    // analyze: untrusted-source
    pub(crate) fn hwm(&self) -> u64 {
        self.pool.meta(SLOT_HWM)
    }

    /// Live segment sequence numbers, ascending.
    pub(crate) fn live_segments(&self) -> Result<Vec<u64>> {
        let segs = BTree::open(&self.pool, SLOT_SEGS)?;
        let mut out = Vec::new();
        segs.for_each_range((0, 0), (u64::MAX, u64::MAX), |(s, _), _| {
            out.push(s);
            true
        })?;
        Ok(out)
    }

    /// Durably reserves `n` fresh segment sequence numbers, returning the
    /// first. Committed **before** any segment file is created, upholding
    /// the orphan-sweep invariant (`.seg.<s>` on disk implies `s < hwm`).
    pub(crate) fn reserve_seqs(&mut self, n: u64) -> Result<u64> {
        let first = self.hwm();
        if first > u64::MAX - n {
            return Err(StoreError::InvalidArgument(
                "segment sequence space exhausted".into(),
            ));
        }
        let next = first + n;
        self.transactional(|pool| pool.set_meta(SLOT_HWM, next))?;
        Ok(first)
    }

    /// Commits freshly built (and already synced) segments into the live
    /// list — the publication point of a memtable flush.
    pub(crate) fn register_segments(&mut self, seqs: &[u64]) -> Result<()> {
        self.transactional(|pool| {
            let segs = BTree::open(pool, SLOT_SEGS)?;
            for &s in seqs {
                segs.insert((s, 0), 1)?;
            }
            Ok(())
        })
    }

    /// Commits a compaction: the main file advances to `new_gen` and the
    /// live segment list empties, in one transaction. The caller deletes
    /// the superseded files afterwards (best effort; the open-time sweep
    /// finishes the job after a crash).
    pub(crate) fn commit_compaction(&mut self, new_gen: u64) -> Result<()> {
        let live = self.live_segments()?;
        self.transactional(|pool| {
            pool.set_meta(SLOT_GEN, new_gen)?;
            let segs = BTree::open(pool, SLOT_SEGS)?;
            for &s in &live {
                segs.delete((s, 0))?;
            }
            Ok(())
        })
    }

    // analyze: txn-boundary
    fn transactional(&mut self, f: impl FnOnce(&BufferPool) -> Result<()>) -> Result<()> {
        self.pool.begin()?;
        match f(&self.pool) {
            Ok(()) => {
                self.pool.commit()?;
                #[cfg(debug_assertions)]
                {
                    self.pool.validate_pager()?;
                }
                Ok(())
            }
            Err(e) => {
                self.pool.rollback()?;
                Err(e)
            }
        }
    }
}
