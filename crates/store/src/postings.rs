//! Succinct posting-block storage for the inverted relation (format v3).
//!
//! The inverted relation maps `(pqgram, treeId) -> count`. In format v2
//! every posting was its own B+-tree row — 20-odd bytes per posting once
//! leaf overhead is counted. Format v3 keeps the same B+-tree as a
//! *directory* but partitions the full `(gram, treeId)` row sequence into
//! compressed **posting blocks** stored on dedicated pack pages:
//!
//! * **Inline posting** — directory row `(gram, treeId) -> count | INLINE_BIT`.
//!   Used for fresh point inserts and tiny relations.
//! * **Posting block** — directory row `(last_gram, last_treeId) -> pack
//!   PageId`. The block holds up to [`MAX_BLOCK_ROWS`] lexicographically
//!   ascending `(gram, treeId, count)` rows — *across gram boundaries* —
//!   encoded as an Elias-Fano sequence of the distinct grams, bit-packed
//!   cumulative per-gram row counts, bit-packed treeIds and counts, ending
//!   in a CRC-32. Blocks are not per-gram: rare grams share blocks with their
//!   neighbours, so the directory shrinks to one row per ~256 postings.
//!
//! Keying blocks by their *last* row makes the covering block of a point
//! `(g, t)` the first directory entry `>= (g, t)` — one bounded B+-tree
//! descent, no reverse scan. Block row ranges are disjoint and ascending,
//! and inline rows never fall inside a block's range, so range probes
//! stream the directory in order, skip blocks whose header range excludes
//! the probed gram (per-block metadata, no decode), and decode the rest.
//!
//! All decode paths are reachable from recovery and lookup entrypoints, so
//! every read is bounds-checked and every structural violation returns
//! [`StoreError::Corrupt`] — this module must never panic on disk bytes.

use crate::btree::BTree;
use crate::buffer::BufferPool;
use crate::crc::crc32;
use crate::page::{PageBuf, PageId, PAGE_SIZE};
use crate::pager::{Result, StoreError};

/// One posting row: `((gram, treeId), count)`.
pub(crate) type Row = ((u64, u64), u32);

/// Meta slot holding the current fill pack page (`id + 1`, `0` = none).
pub(crate) const SLOT_FILL: usize = 8;

/// Tag bit distinguishing inline directory values from pack-page pointers.
pub(crate) const INLINE_BIT: u32 = 1 << 31;

/// Maximum postings per block.
pub(crate) const MAX_BLOCK_ROWS: usize = 256;

/// Bulk loads leave row chunks below this size inline: a block costs a
/// directory row plus the pack entry header, which only pays off once a
/// few rows share them.
pub(crate) const BLOCK_MIN: usize = 4;

/// Maintenance collapses a run of at least this many consecutive inline
/// postings into a block.
const COLLAPSE_MIN: usize = 64;

/// First byte of a pack page.
const PACK_TAG: u8 = 0xB7;

/// Pack-page header: tag u8, pad u8, n_entries u16, used u16, pad u16.
const PACK_HDR: usize = 8;

/// Pack-entry header: last_gram u64, last_tid u64, first_gram u64,
/// first_tid u64, n u16, len u16. The directory key comes first so entry
/// lookup reads one aligned pair.
const ENTRY_HDR: usize = 36;

/// Payload prefix: G u16, gram-low width u8, run width u8, treeId width
/// u8, count width u8.
const PREFIX: usize = 6;

/// Payload bytes available on one pack page.
const PACK_CAPACITY: usize = PAGE_SIZE - PACK_HDR;

/// Tags a raw posting count as an inline directory value.
pub(crate) fn inline_value(count: u32) -> Result<u32> {
    if count == 0 || count >= INLINE_BIT {
        return Err(StoreError::Corrupt(format!(
            "posting count {count} out of range for inline encoding"
        )));
    }
    Ok(count | INLINE_BIT)
}

/// Tags a pack page id as a block directory value.
fn block_value(page: PageId) -> Result<u32> {
    if page.0 >= INLINE_BIT {
        return Err(StoreError::Corrupt(format!(
            "pack page id {} out of range for block encoding",
            page.0
        )));
    }
    Ok(page.0)
}

/// A directory value, untagged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum DirValue {
    /// The posting count is stored inline in the directory row.
    Inline(u32),
    /// The postings live in a block on this pack page.
    Block(PageId),
}

/// Decodes a tagged directory value.
pub(crate) fn dir_value(raw: u32) -> DirValue {
    if raw & INLINE_BIT != 0 {
        DirValue::Inline(raw & !INLINE_BIT)
    } else {
        DirValue::Block(PageId(raw))
    }
}

/// Decodes a tagged directory value, rejecting zero inline counts.
pub(crate) fn dir_value_checked(raw: u32) -> Result<DirValue> {
    match dir_value(raw) {
        DirValue::Inline(0) => Err(corrupt("inline posting with zero count")),
        v => Ok(v),
    }
}

fn corrupt(msg: &str) -> StoreError {
    StoreError::Corrupt(format!("posting block: {msg}"))
}

// ---------------------------------------------------------------------------
// Bit-level encoding
// ---------------------------------------------------------------------------

/// LSB-first bit writer over a byte vector.
struct BitWriter {
    bytes: Vec<u8>,
    bit: usize,
}

impl BitWriter {
    fn with_bits(bits: usize) -> Self {
        BitWriter {
            bytes: vec![0u8; bits.div_ceil(8)],
            bit: 0,
        }
    }

    /// Sets the bit at an absolute position (used for unary high bits).
    fn set(&mut self, pos: usize) -> Result<()> {
        let byte = self
            .bytes
            .get_mut(pos / 8)
            .ok_or_else(|| corrupt("bit position out of range while encoding"))?;
        *byte |= 1u8 << (pos % 8);
        Ok(())
    }

    /// Appends the low `width` bits of `value` at the write cursor.
    fn push(&mut self, value: u64, width: u8) -> Result<()> {
        for i in 0..width {
            if value >> i & 1 != 0 {
                let pos = self
                    .bit
                    .checked_add(usize::from(i))
                    .ok_or_else(|| corrupt("bit cursor overflow while encoding"))?;
                self.set(pos)?;
            }
        }
        self.bit = self
            .bit
            .checked_add(usize::from(width))
            .ok_or_else(|| corrupt("bit cursor overflow while encoding"))?;
        Ok(())
    }
}

/// LSB-first bit reader over a byte slice.
struct BitReader<'a> {
    bytes: &'a [u8],
}

impl BitReader<'_> {
    /// Reads `width` bits starting at absolute bit `pos`, word-at-a-time:
    /// the value spans at most 9 bytes, loaded into a `u128` and shifted.
    // analyze: untrusted-source
    fn read(&self, pos: usize, width: u8) -> Result<u64> {
        if width == 0 {
            return Ok(0);
        }
        let byte = pos / 8;
        let shift = pos % 8;
        let need = (shift + usize::from(width)).div_ceil(8);
        let end = byte
            .checked_add(need)
            .ok_or_else(|| corrupt("bit cursor overflow while decoding"))?;
        let src = self
            .bytes
            .get(byte..end)
            .ok_or_else(|| corrupt("bit position out of range while decoding"))?;
        let mut buf = [0u8; 16];
        if let Some(dst) = buf.get_mut(..need) {
            dst.copy_from_slice(src);
        }
        let word = u128::from_le_bytes(buf) >> shift;
        let mask = if width >= 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        u64::try_from(word & u128::from(mask)).map_err(|_| corrupt("bit read exceeds word"))
    }
}

/// Sequential LSB-first bit reader: keeps a bit buffer across reads so
/// fixed-stride row loops skip the per-read slice arithmetic of
/// [`BitReader::read`]. Refills eight bytes at a time while they last.
struct SeqBits<'a> {
    bytes: &'a [u8],
    next: usize,
    buf: u128,
    avail: u32,
}

impl<'a> SeqBits<'a> {
    /// A reader positioned at absolute bit `pos`.
    // analyze: untrusted-source
    fn at(bytes: &'a [u8], pos: usize) -> SeqBits<'a> {
        let mut r = SeqBits {
            bytes,
            next: pos / 8,
            buf: 0,
            avail: 0,
        };
        let skip = u32::try_from(pos % 8).unwrap_or(0);
        if skip > 0 {
            if let Some(&b) = bytes.get(r.next) {
                r.buf = u128::from(b >> skip);
                r.avail = 8 - skip;
                r.next += 1;
            }
            // Out of bytes: `avail` stays 0 and the first read errors.
        }
        r
    }

    /// Reads the next `width` bits.
    // analyze: untrusted-source
    #[inline]
    fn read(&mut self, width: u8) -> Result<u64> {
        let w = u32::from(width);
        if w == 0 {
            return Ok(0);
        }
        while self.avail < w {
            if let Some(chunk) = self.bytes.get(self.next..self.next + 8) {
                let mut b8 = [0u8; 8];
                b8.copy_from_slice(chunk);
                self.buf |= u128::from(u64::from_le_bytes(b8)) << self.avail;
                self.next += 8;
                self.avail += 64;
            } else if let Some(&b) = self.bytes.get(self.next) {
                self.buf |= u128::from(b) << self.avail;
                self.next += 1;
                self.avail += 8;
            } else {
                return Err(corrupt("bit position out of range while decoding"));
            }
        }
        let mask = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
        let val = u64::try_from(self.buf & u128::from(mask))
            .map_err(|_| corrupt("bit read exceeds word"))?;
        self.buf >>= w;
        self.avail -= w;
        Ok(val)
    }
}

/// Bits needed for `v` (0 for `v == 0`).
fn bit_width(v: u64) -> u8 {
    u8::try_from(64 - v.leading_zeros()).unwrap_or(64)
}

/// Low-bit width for Elias-Fano over universe `u` with `n` elements.
fn low_width(u: u64, n: u64) -> u8 {
    if n == 0 || u / n == 0 {
        0
    } else {
        u8::try_from(63 - (u / n).leading_zeros()).unwrap_or(63)
    }
}

// ---------------------------------------------------------------------------
// Block encode / decode
// ---------------------------------------------------------------------------

/// The size plan of one block encoding: section widths plus the total
/// entry length. Shared between the encoder and the chunker so "will it
/// fit a pack page" is answered without encoding.
struct Plan {
    grams: Vec<u64>,
    runs: Vec<usize>,
    gw: u8,
    rw: u8,
    tw: u8,
    cw: u8,
    gram_high_bits: usize,
    total: usize,
}

/// Validates `rows` (non-empty, ≤ [`MAX_BLOCK_ROWS`], strictly ascending
/// `(gram, treeId)` pairs, positive counts) and computes the size plan.
fn plan_block(rows: &[Row]) -> Result<Plan> {
    let n = rows.len();
    if n == 0 || n > MAX_BLOCK_ROWS {
        return Err(corrupt("row count out of range while encoding"));
    }
    for (a, b) in rows.iter().zip(rows.iter().skip(1)) {
        if a.0 >= b.0 {
            return Err(corrupt("rows not strictly ascending while encoding"));
        }
    }
    if rows.iter().any(|&(_, c)| c == 0) {
        return Err(corrupt("zero posting count while encoding"));
    }
    let mut grams: Vec<u64> = Vec::new();
    let mut runs: Vec<usize> = Vec::new();
    for &((g, _), _) in rows {
        if grams.last() == Some(&g) {
            if let Some(r) = runs.last_mut() {
                *r += 1;
            }
        } else {
            grams.push(g);
            runs.push(1);
        }
    }
    let g_count = u64::try_from(grams.len()).map_err(|_| corrupt("gram count too large"))?;
    let first_gram = grams.first().copied().unwrap_or(0);
    let last_gram = grams.last().copied().unwrap_or(0);
    let u_g = last_gram - first_gram;
    let gw = low_width(u_g, g_count);
    let n64 = u64::try_from(n).map_err(|_| corrupt("row count too large"))?;
    let rw = bit_width(n64 - 1);
    let tw = bit_width(rows.iter().map(|&((_, t), _)| t).max().unwrap_or(0));
    let cw = bit_width(u64::from(
        rows.iter().map(|&(_, c)| c - 1).max().unwrap_or(0),
    ));
    let gram_high_bits = grams
        .len()
        .checked_add(usize::try_from(u_g >> gw).map_err(|_| corrupt("gram universe too large"))?)
        .and_then(|v| v.checked_add(1))
        .ok_or_else(|| corrupt("gram universe too large"))?;
    let sections = gram_high_bits
        .div_ceil(8)
        .checked_add(
            grams.len() * usize::from(gw) / 8 + usize::from(grams.len() * usize::from(gw) % 8 != 0),
        )
        .and_then(|v| v.checked_add((grams.len() * usize::from(rw)).div_ceil(8)))
        .and_then(|v| v.checked_add((n * usize::from(tw)).div_ceil(8)))
        .and_then(|v| v.checked_add((n * usize::from(cw)).div_ceil(8)))
        .ok_or_else(|| corrupt("payload too large"))?;
    let total = ENTRY_HDR
        .checked_add(PREFIX)
        .and_then(|v| v.checked_add(sections))
        .and_then(|v| v.checked_add(4)) // trailing crc
        .ok_or_else(|| corrupt("payload too large"))?;
    Ok(Plan {
        grams,
        runs,
        gw,
        rw,
        tw,
        cw,
        gram_high_bits,
        total,
    })
}

/// A decoded posting block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Decoded {
    /// Smallest `(gram, treeId)` in the block.
    pub first: (u64, u64),
    /// Largest `(gram, treeId)` in the block (the directory key).
    pub last: (u64, u64),
    /// Rows, strictly ascending by `(gram, treeId)`.
    pub rows: Vec<Row>,
}

/// Encodes one posting block (entry header + payload + CRC).
///
/// `rows` must be non-empty, at most [`MAX_BLOCK_ROWS`] long, strictly
/// ascending by `(gram, treeId)`, with positive counts, and the encoding
/// must fit a pack page — use [`chunk_rows`] to pre-split.
pub(crate) fn encode_block(rows: &[Row]) -> Result<Vec<u8>> {
    let plan = plan_block(rows)?;
    if plan.total > PACK_CAPACITY {
        return Err(corrupt("encoded block exceeds pack page capacity"));
    }
    let n = rows.len();
    let (first, last) = match (rows.first(), rows.last()) {
        (Some(f), Some(l)) => (f.0, l.0),
        _ => return Err(corrupt("row count out of range while encoding")),
    };
    let first_gram = first.0;

    let mut gram_high = BitWriter::with_bits(plan.gram_high_bits);
    let mut gram_low = BitWriter::with_bits(plan.grams.len() * usize::from(plan.gw));
    let mut run_bits = BitWriter::with_bits(plan.grams.len() * usize::from(plan.rw));
    let mut cum = 0usize;
    for (i, (&g, &r)) in plan.grams.iter().zip(plan.runs.iter()).enumerate() {
        let delta = g - first_gram;
        let pos = usize::try_from(delta >> plan.gw)
            .ok()
            .and_then(|p| p.checked_add(i))
            .ok_or_else(|| corrupt("gram universe too large"))?;
        gram_high.set(pos)?;
        if plan.gw > 0 {
            gram_low.push(delta & ((1u64 << plan.gw) - 1), plan.gw)?;
        }
        // Cumulative row count through this gram, biased by one: probes
        // read any gram's row prefix and run length in O(1).
        cum += r;
        let cum64 = u64::try_from(cum).map_err(|_| corrupt("row count too large"))?;
        if plan.rw > 0 {
            run_bits.push(cum64 - 1, plan.rw)?;
        }
    }
    let mut tids = BitWriter::with_bits(n * usize::from(plan.tw));
    let mut counts = BitWriter::with_bits(n * usize::from(plan.cw));
    for &((_, t), c) in rows {
        if plan.tw > 0 {
            tids.push(t, plan.tw)?;
        }
        if plan.cw > 0 {
            counts.push(u64::from(c - 1), plan.cw)?;
        }
    }

    let len = plan.total - ENTRY_HDR;
    let len16 = u16::try_from(len).map_err(|_| corrupt("payload too large"))?;
    let n16 = u16::try_from(n).map_err(|_| corrupt("row count too large"))?;
    let g16 = u16::try_from(plan.grams.len()).map_err(|_| corrupt("gram count too large"))?;

    let mut out = Vec::with_capacity(plan.total);
    out.extend_from_slice(&last.0.to_le_bytes());
    out.extend_from_slice(&last.1.to_le_bytes());
    out.extend_from_slice(&first.0.to_le_bytes());
    out.extend_from_slice(&first.1.to_le_bytes());
    out.extend_from_slice(&n16.to_le_bytes());
    out.extend_from_slice(&len16.to_le_bytes());
    out.extend_from_slice(&g16.to_le_bytes());
    out.push(plan.gw);
    out.push(plan.rw);
    out.push(plan.tw);
    out.push(plan.cw);
    out.extend_from_slice(&gram_high.bytes);
    out.extend_from_slice(&gram_low.bytes);
    out.extend_from_slice(&run_bits.bytes);
    out.extend_from_slice(&tids.bytes);
    out.extend_from_slice(&counts.bytes);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    if out.len() != plan.total {
        return Err(corrupt("encoder produced an inconsistent length"));
    }
    Ok(out)
}

/// Splits `rows` into consecutive chunks that each satisfy the block
/// limits (row count and pack-page capacity). Concatenating the chunks in
/// order reproduces `rows`.
pub(crate) fn chunk_rows(rows: &[Row]) -> Result<Vec<&[Row]>> {
    let mut out = Vec::new();
    if rows.is_empty() {
        return Ok(out);
    }
    // Depth-first halving over index ranges; pushing the right half first
    // keeps the popped order left-to-right.
    let mut stack = vec![(0usize, rows.len(), 0u32)];
    while let Some((start, end, depth)) = stack.pop() {
        if depth > 64 {
            return Err(corrupt("block chunking did not converge"));
        }
        let chunk = rows
            .get(start..end)
            .ok_or_else(|| corrupt("block chunking range out of bounds"))?;
        if chunk.len() <= MAX_BLOCK_ROWS && plan_block(chunk)?.total <= PACK_CAPACITY {
            out.push(chunk);
            continue;
        }
        if chunk.len() < 2 {
            return Err(corrupt("single row exceeds pack page capacity"));
        }
        let mid = start + chunk.len() / 2;
        stack.push((mid, end, depth + 1));
        stack.push((start, mid, depth + 1));
    }
    Ok(out)
}

// analyze: untrusted-source
fn read_u64(bytes: &[u8], off: usize) -> Result<u64> {
    let end = off
        .checked_add(8)
        .ok_or_else(|| corrupt("offset overflow"))?;
    let slice = bytes
        .get(off..end)
        .ok_or_else(|| corrupt("entry truncated"))?;
    let arr: [u8; 8] = slice.try_into().map_err(|_| corrupt("entry truncated"))?;
    Ok(u64::from_le_bytes(arr))
}

// analyze: untrusted-source
fn read_u16(bytes: &[u8], off: usize) -> Result<u16> {
    let end = off
        .checked_add(2)
        .ok_or_else(|| corrupt("offset overflow"))?;
    let slice = bytes
        .get(off..end)
        .ok_or_else(|| corrupt("entry truncated"))?;
    let arr: [u8; 2] = slice.try_into().map_err(|_| corrupt("entry truncated"))?;
    Ok(u16::from_le_bytes(arr))
}

/// Bounds-checked section view of one pack entry: header fields parsed and
/// validated, every section sliced. Built by [`parse_sections`] (no CRC) or
/// [`validate_entry`] (with CRC); rows are decoded lazily from this.
struct Sections<'a> {
    first: (u64, u64),
    last: (u64, u64),
    n: usize,
    g_count: usize,
    gw: u8,
    rw: u8,
    tw: u8,
    cw: u8,
    gram_high_bits: usize,
    gram_high: &'a [u8],
    gram_low: BitReader<'a>,
    run_bits: BitReader<'a>,
    tid_bits: BitReader<'a>,
    count_bits: BitReader<'a>,
}

/// The validated section layout of one pack entry: header fields plus the
/// byte offset of every section. Plain data (no borrows), so the probe
/// memo in [`BlockCache`] can keep it alongside the entry bytes and skip
/// re-parsing on every hit.
#[derive(Clone, Copy)]
struct Layout {
    first: (u64, u64),
    last: (u64, u64),
    n: usize,
    g_count: usize,
    gw: u8,
    rw: u8,
    tw: u8,
    cw: u8,
    gram_high_bits: usize,
    gram_low_off: usize,
    run_off: usize,
    tid_off: usize,
    count_off: usize,
    crc_off: usize,
}

/// Slices the sections of `bytes` according to an already-parsed `Layout`
/// (which must have been produced from these same bytes).
// analyze: validates(offset|len)
fn sections_of<'a>(bytes: &'a [u8], l: &Layout) -> Result<Sections<'a>> {
    let section = |a: usize, b: usize| -> Result<&'a [u8]> {
        bytes.get(a..b).ok_or_else(|| corrupt("entry truncated"))
    };
    Ok(Sections {
        first: l.first,
        last: l.last,
        n: l.n,
        g_count: l.g_count,
        gw: l.gw,
        rw: l.rw,
        tw: l.tw,
        cw: l.cw,
        gram_high_bits: l.gram_high_bits,
        gram_high: section(ENTRY_HDR + PREFIX, l.gram_low_off)?,
        gram_low: BitReader {
            bytes: section(l.gram_low_off, l.run_off)?,
        },
        run_bits: BitReader {
            bytes: section(l.run_off, l.tid_off)?,
        },
        tid_bits: BitReader {
            bytes: section(l.tid_off, l.count_off)?,
        },
        count_bits: BitReader {
            bytes: section(l.count_off, l.crc_off)?,
        },
    })
}

/// Parses and bounds-checks the header and section layout of one entry
/// *without* verifying the CRC — callers either verify it themselves
/// ([`validate_entry`]) or hold bytes already verified once (the probe
/// memo in [`BlockCache`]).
// analyze: validates(len|offset|count)
fn parse_layout(bytes: &[u8]) -> Result<Layout> {
    if bytes.len() < ENTRY_HDR + PREFIX + 4 {
        return Err(corrupt("entry shorter than minimum"));
    }
    let last = (read_u64(bytes, 0)?, read_u64(bytes, 8)?);
    let first = (read_u64(bytes, 16)?, read_u64(bytes, 24)?);
    let n = usize::from(read_u16(bytes, 32)?);
    let len = usize::from(read_u16(bytes, 34)?);
    if ENTRY_HDR
        .checked_add(len)
        .map(|total| total != bytes.len())
        .unwrap_or(true)
    {
        return Err(corrupt("entry length disagrees with header"));
    }
    if n == 0 || n > MAX_BLOCK_ROWS {
        return Err(corrupt("row count out of range"));
    }
    if last < first {
        return Err(corrupt("last row below first"));
    }
    let g_count = usize::from(read_u16(bytes, ENTRY_HDR)?);
    let widths = bytes
        .get(ENTRY_HDR + 2..ENTRY_HDR + PREFIX)
        .ok_or_else(|| corrupt("entry truncated"))?;
    let (gw, rw, tw, cw) = (widths[0], widths[1], widths[2], widths[3]);
    if g_count == 0 || g_count > n {
        return Err(corrupt("gram count out of range"));
    }
    if gw > 63 || rw > 8 || tw > 64 || cw > 32 {
        return Err(corrupt("section width out of range"));
    }
    let u_g = last
        .0
        .checked_sub(first.0)
        .ok_or_else(|| corrupt("last row below first"))?;
    let gram_high_bits = g_count
        .checked_add(usize::try_from(u_g >> gw).map_err(|_| corrupt("gram universe too large"))?)
        .and_then(|v| v.checked_add(1))
        .ok_or_else(|| corrupt("gram universe too large"))?;
    let gram_high_len = gram_high_bits.div_ceil(8);
    let gram_low_len = (g_count * usize::from(gw)).div_ceil(8);
    let run_len = (g_count * usize::from(rw)).div_ceil(8);
    let tid_len = (n * usize::from(tw)).div_ceil(8);
    let count_len = (n * usize::from(cw)).div_ceil(8);
    let expect_len = gram_high_len
        .checked_add(gram_low_len)
        .and_then(|v| v.checked_add(run_len))
        .and_then(|v| v.checked_add(tid_len))
        .and_then(|v| v.checked_add(count_len))
        .and_then(|v| v.checked_add(PREFIX + 4))
        .ok_or_else(|| corrupt("section sizes overflow"))?;
    if expect_len != len {
        return Err(corrupt("section sizes disagree with entry length"));
    }
    let gram_high_off = ENTRY_HDR + PREFIX;
    let gram_low_off = gram_high_off + gram_high_len;
    let run_off = gram_low_off + gram_low_len;
    Ok(Layout {
        first,
        last,
        n,
        g_count,
        gw,
        rw,
        tw,
        cw,
        gram_high_bits,
        gram_low_off,
        run_off,
        tid_off: run_off + run_len,
        count_off: run_off + run_len + tid_len,
        crc_off: bytes.len() - 4,
    })
}

/// [`parse_layout`] plus section slicing.
// analyze: validates(len|offset|count)
fn parse_sections(bytes: &[u8]) -> Result<Sections<'_>> {
    let layout = parse_layout(bytes)?;
    sections_of(bytes, &layout)
}

/// Verifies the trailing CRC of one entry (covers everything before the
/// last 4 bytes).
// analyze: taint-exempt(verifies the trailing checksum; total — every read is a bounds-checked slice and nothing here steers memory)
fn check_crc(bytes: &[u8]) -> Result<()> {
    let crc_off = bytes
        .len()
        .checked_sub(4)
        .ok_or_else(|| corrupt("entry truncated"))?;
    let body = bytes
        .get(..crc_off)
        .ok_or_else(|| corrupt("entry truncated"))?;
    let stored = u32::from_le_bytes(
        bytes
            .get(crc_off..)
            .and_then(|s| <[u8; 4]>::try_from(s).ok())
            .ok_or_else(|| corrupt("entry truncated"))?,
    );
    if crc32(body) != stored {
        return Err(corrupt("checksum mismatch"));
    }
    Ok(())
}

/// [`parse_sections`] plus CRC verification.
// analyze: validates(len|offset|count)
fn validate_entry(bytes: &[u8]) -> Result<Sections<'_>> {
    let sections = parse_sections(bytes)?;
    check_crc(bytes)?;
    Ok(sections)
}

/// Calls `f` with the position of every set bit among the first `nbits`
/// bits of `section`, word-at-a-time (zeros are skipped 64 bits per step).
/// `f` returns `false` to stop the scan.
// analyze: taint-exempt(branchless bit trick over raw words; total on all inputs, emits positions only)
fn scan_set_bits(section: &[u8], nbits: usize, mut f: impl FnMut(usize) -> bool) {
    let mut base = 0usize;
    for chunk in section.chunks(8) {
        let mut buf = [0u8; 8];
        if let Some(dst) = buf.get_mut(..chunk.len()) {
            dst.copy_from_slice(chunk);
        }
        let mut word = u64::from_le_bytes(buf);
        if nbits < base + 64 {
            // Mask garbage past the logical end of the section.
            let keep = u32::try_from(nbits.saturating_sub(base)).unwrap_or(64);
            word &= 1u64.checked_shl(keep).map(|v| v - 1).unwrap_or(u64::MAX);
        }
        while word != 0 {
            let bit = usize::try_from(word.trailing_zeros()).unwrap_or(usize::MAX);
            if !f(base + bit) {
                return;
            }
            word &= word - 1;
        }
        base += 64;
    }
}

/// Position of the `b`-th zero bit (1-indexed) among the first `nbits`
/// bits of `section`, word-at-a-time: whole words of set bits are skipped
/// with a popcount, and the final word is selected by clearing low bits.
/// `None` when the section holds fewer than `b` zeros.
// analyze: taint-exempt(branchless popcount select over raw words; total on all inputs, emits positions only)
fn select_zero(section: &[u8], nbits: usize, b: usize) -> Option<usize> {
    if b == 0 {
        return None;
    }
    let mut remaining = b;
    let mut base = 0usize;
    for chunk in section.chunks(8) {
        if base >= nbits {
            break;
        }
        let mut buf = [0u8; 8];
        if let Some(dst) = buf.get_mut(..chunk.len()) {
            dst.copy_from_slice(chunk);
        }
        // Complement so zeros become the countable bits, masking garbage
        // past the logical end of the section.
        let mut word = !u64::from_le_bytes(buf);
        let keep = u32::try_from(nbits.saturating_sub(base).min(64)).unwrap_or(64);
        word &= 1u64.checked_shl(keep).map(|v| v - 1).unwrap_or(u64::MAX);
        let zeros = usize::try_from(word.count_ones()).unwrap_or(64);
        if remaining > zeros {
            remaining -= zeros;
        } else {
            for _ in 1..remaining {
                word &= word - 1;
            }
            return Some(base + usize::try_from(word.trailing_zeros()).unwrap_or(0));
        }
        base += 64;
    }
    None
}

/// The bit at `pos` among the first `nbits` bits of `section` (`false`
/// past the logical end).
// analyze: taint-exempt(single checked bit probe; total on all inputs)
fn bit_at(section: &[u8], nbits: usize, pos: usize) -> bool {
    pos < nbits
        && section
            .get(pos / 8)
            .is_some_and(|&b| b >> (pos % 8) & 1 != 0)
}

/// The `i`-th distinct gram from the Elias-Fano sections, given the
/// position of its set high bit.
// analyze: untrusted-source
fn ef_gram(s: &Sections<'_>, i: usize, pos: usize) -> Result<u64> {
    let bucket = pos
        .checked_sub(i)
        .ok_or_else(|| corrupt("gram high bit before its rank"))
        .map(u64::try_from)?
        .map_err(|_| corrupt("gram high bit out of range"))?;
    let lo = if s.gw > 0 {
        s.gram_low.read(i * usize::from(s.gw), s.gw)?
    } else {
        0
    };
    let delta = bucket
        .checked_shl(u32::from(s.gw))
        .and_then(|v| v.checked_add(lo))
        .ok_or_else(|| corrupt("gram delta overflow"))?;
    s.first
        .0
        .checked_add(delta)
        .ok_or_else(|| corrupt("gram overflow"))
}

/// Cumulative row count through the `i`-th distinct gram (rows of grams
/// `0..=i`). Stored biased by one so a probe reads any gram's row prefix
/// and run length in O(1) instead of summing run lengths.
// analyze: untrusted-source
fn ef_cum(s: &Sections<'_>, i: usize) -> Result<usize> {
    let raw = if s.rw > 0 {
        s.run_bits.read(i * usize::from(s.rw), s.rw)?
    } else {
        0
    };
    usize::try_from(raw)
        .ok()
        .and_then(|r| r.checked_add(1))
        .ok_or_else(|| corrupt("cumulative count overflow"))
}

/// Decodes one posting block entry (header + payload + CRC).
///
/// Every structural violation — truncation, CRC mismatch, non-monotone
/// rows, header/payload disagreement — returns [`StoreError::Corrupt`];
/// this function must never panic on arbitrary bytes.
// analyze: validates(len|offset|count)
pub(crate) fn decode_block(bytes: &[u8]) -> Result<Decoded> {
    let s = validate_entry(bytes)?;
    let (first, last) = (s.first, s.last);

    // Distinct grams: Elias-Fano, strictly ascending.
    let mut grams = Vec::with_capacity(s.g_count);
    let mut scan_err: Option<StoreError> = None;
    scan_set_bits(s.gram_high, s.gram_high_bits, |pos| {
        let i = grams.len();
        if i >= s.g_count {
            scan_err = Some(corrupt("more set gram bits than grams"));
            return false;
        }
        match ef_gram(&s, i, pos) {
            Ok(gram) => {
                if grams.last().is_some_and(|&p| gram <= p) {
                    scan_err = Some(corrupt("grams not strictly ascending"));
                    return false;
                }
                grams.push(gram);
                true
            }
            Err(e) => {
                scan_err = Some(e);
                false
            }
        }
    });
    if let Some(e) = scan_err {
        return Err(e);
    }
    if grams.len() != s.g_count {
        return Err(corrupt("fewer set gram bits than grams"));
    }

    // Cumulative counts: strictly increasing, ending exactly at n.
    let mut runs = Vec::with_capacity(s.g_count);
    let mut prev = 0usize;
    for i in 0..s.g_count {
        let cum = ef_cum(&s, i)?;
        if cum <= prev || cum > s.n {
            return Err(corrupt("cumulative counts not strictly increasing"));
        }
        runs.push(cum - prev);
        prev = cum;
    }
    if prev != s.n {
        return Err(corrupt("cumulative counts disagree with row count"));
    }

    // Rows: per-gram strictly ascending treeIds, positive counts.
    let mut rows: Vec<Row> = Vec::with_capacity(s.n);
    let mut tids = SeqBits::at(s.tid_bits.bytes, 0);
    let mut cnts = SeqBits::at(s.count_bits.bytes, 0);
    for (&gram, &run) in grams.iter().zip(runs.iter()) {
        let mut prev_tid: Option<u64> = None;
        for _ in 0..run {
            let tid = tids.read(s.tw)?;
            let count = decode_count(&mut cnts, s.cw)?;
            if prev_tid.is_some_and(|p| tid <= p) {
                return Err(corrupt("treeIds not strictly ascending"));
            }
            prev_tid = Some(tid);
            rows.push(((gram, tid), count));
        }
    }
    if rows.first().map(|r| r.0) != Some(first) {
        return Err(corrupt("first row disagrees with header"));
    }
    if rows.last().map(|r| r.0) != Some(last) {
        return Err(corrupt("last row disagrees with header"));
    }
    Ok(Decoded { first, last, rows })
}

/// Streams the rows of a single `gram` out of one entry whose CRC has
/// already been verified (see [`BlockCache`]): a select-zero jump lands on
/// the gram's Elias-Fano bucket, the cumulative-count section gives its row
/// prefix and run length in O(1), then only that run's treeIds and counts
/// are decoded — the rest of the block is never materialised.
///
/// Returns `false` if `f` asked to stop early.
fn for_each_gram_in_sections(
    s: &Sections<'_>,
    gram: u64,
    counters: &mut ProbeCounters,
    f: &mut impl FnMut(u64, u32) -> bool,
) -> Result<bool> {
    if gram < s.first.0 || gram > s.last.0 {
        return Ok(true);
    }
    let delta = gram - s.first.0;
    let bucket = delta.checked_shr(u32::from(s.gw)).unwrap_or(0);
    let low_mask = 1u64
        .checked_shl(u32::from(s.gw))
        .map(|v| v - 1)
        .unwrap_or(u64::MAX);
    let lo_t = delta & low_mask;
    // Bucket `b`'s set bits (grams sharing the high part) sit between the
    // b-th and (b+1)-th zero bits; bucket 0 starts at position 0.
    let (mut idx, mut pos) = if bucket == 0 {
        (0usize, 0usize)
    } else {
        let b = usize::try_from(bucket).map_err(|_| corrupt("gram bucket overflow"))?;
        let pz = select_zero(s.gram_high, s.gram_high_bits, b)
            .ok_or_else(|| corrupt("gram bucket past high-bit section"))?;
        let idx = (pz + 1)
            .checked_sub(b)
            .ok_or_else(|| corrupt("gram high bit before its rank"))?;
        (idx, pz + 1)
    };
    // Walk the bucket's consecutive set bits; low bits ascend strictly
    // within a bucket, so the first miss past `lo_t` ends the search.
    let mut found: Option<usize> = None;
    while idx < s.g_count && bit_at(s.gram_high, s.gram_high_bits, pos) {
        let lo = if s.gw > 0 {
            s.gram_low.read(idx * usize::from(s.gw), s.gw)?
        } else {
            0
        };
        if lo >= lo_t {
            if lo == lo_t {
                found = Some(idx);
            }
            break;
        }
        idx += 1;
        pos += 1;
    }
    let Some(index) = found else { return Ok(true) };
    let prefix = if index == 0 { 0 } else { ef_cum(s, index - 1)? };
    let end = ef_cum(s, index)?;
    if end > s.n || prefix >= end {
        return Err(corrupt("cumulative counts disagree with row count"));
    }
    let mut tids = SeqBits::at(s.tid_bits.bytes, prefix * usize::from(s.tw));
    let mut cnts = SeqBits::at(s.count_bits.bytes, prefix * usize::from(s.cw));
    let mut prev_tid: Option<u64> = None;
    for _ in prefix..end {
        let tid = tids.read(s.tw)?;
        let count = decode_count(&mut cnts, s.cw)?;
        if prev_tid.is_some_and(|p| tid <= p) {
            return Err(corrupt("treeIds not strictly ascending"));
        }
        prev_tid = Some(tid);
        counters.rows += 1;
        if !f(tid, count) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Reads one biased count (`count - 1` on disk, `1` when `cw == 0`).
// analyze: untrusted-source
#[inline]
fn decode_count(cnts: &mut SeqBits<'_>, cw: u8) -> Result<u32> {
    if cw == 0 {
        return Ok(1);
    }
    let raw = cnts.read(cw)?;
    u32::try_from(raw)
        .ok()
        .and_then(|c| c.checked_add(1))
        .ok_or_else(|| corrupt("count overflow"))
}

// ---------------------------------------------------------------------------
// Pack pages
// ---------------------------------------------------------------------------

/// Total bounds-checked u16 read off a pack page (raw disk bytes).
// analyze: untrusted-source
fn pack_u16(p: &PageBuf, off: usize) -> Result<u16> {
    if off.checked_add(2).is_none_or(|e| e > PAGE_SIZE) {
        return Err(corrupt("pack read out of page bounds"));
    }
    Ok(p.get_u16(off))
}

/// Total bounds-checked u64 read off a pack page (raw disk bytes).
// analyze: untrusted-source
fn pack_u64(p: &PageBuf, off: usize) -> Result<u64> {
    if off.checked_add(8).is_none_or(|e| e > PAGE_SIZE) {
        return Err(corrupt("pack read out of page bounds"));
    }
    Ok(p.get_u64(off))
}

// analyze: untrusted-source
fn pack_used(p: &PageBuf) -> usize {
    usize::from(p.get_u16(4))
}

// analyze: untrusted-source
fn pack_entry_count(p: &PageBuf) -> usize {
    usize::from(p.get_u16(2))
}

/// The smallest possible pack entry: header, empty-payload prefix, CRC.
const MIN_ENTRY: usize = ENTRY_HDR + PREFIX + 4;

/// Reads and validates the pack-page header, returning the entry count
/// and the end of the used region. The count is clamped against the
/// smallest possible entry and the used bytes against the page capacity,
/// so a corrupt header can never size an allocation or bound a walk.
// analyze: validates(len|count)
fn pack_header(p: &PageBuf) -> Result<(usize, usize)> {
    if !is_pack(p) {
        return Err(corrupt("page is not a pack page"));
    }
    let used = pack_used(p);
    let n = pack_entry_count(p);
    if used > PACK_CAPACITY || n > PACK_CAPACITY / MIN_ENTRY {
        return Err(corrupt("pack page header out of range"));
    }
    Ok((n, PACK_HDR + used))
}

fn pack_init(p: &mut PageBuf) {
    p.put_slice(0, &[0u8; PAGE_SIZE]);
    p.put_u8(0, PACK_TAG);
}

fn is_pack(p: &PageBuf) -> bool {
    p.get_u8(0) == PACK_TAG
}

/// Walks the entries of a pack page, returning `(offset, total_len)` pairs.
///
/// Validates that every entry (header plus payload) lies inside the used
/// region and that the entries exactly fill it.
// analyze: validates(offset|len|count)
fn pack_entries(p: &PageBuf) -> Result<Vec<(usize, usize)>> {
    let (n, end) = pack_header(p)?;
    let mut out = Vec::with_capacity(n);
    let mut off = PACK_HDR;
    for _ in 0..n {
        let len_off = off
            .checked_add(34)
            .filter(|&o| o + 2 <= end)
            .ok_or_else(|| corrupt("pack entry header out of range"))?;
        let len = usize::from(pack_u16(p, len_off)?);
        let total = ENTRY_HDR
            .checked_add(len)
            .ok_or_else(|| corrupt("pack entry length overflow"))?;
        let entry_end = off
            .checked_add(total)
            .filter(|&e| e <= end)
            .ok_or_else(|| corrupt("pack entry exceeds used region"))?;
        out.push((off, total));
        off = entry_end;
    }
    if off != end {
        return Err(corrupt("pack page used-bytes mismatch"));
    }
    Ok(out)
}

/// Finds the entry keyed by its last row `key` on a pack page. Walks the
/// entries without materialising them (probe hot path): bounds checks
/// match [`pack_entries`], but the walk stops at the match.
// analyze: validates(offset|len|count)
fn pack_find(p: &PageBuf, key: (u64, u64)) -> Result<Option<(usize, usize)>> {
    let (n, end) = pack_header(p)?;
    let mut off = PACK_HDR;
    for _ in 0..n {
        let len_off = off
            .checked_add(34)
            .filter(|&o| o + 2 <= end)
            .ok_or_else(|| corrupt("pack entry header out of range"))?;
        let len = usize::from(pack_u16(p, len_off)?);
        let total = ENTRY_HDR
            .checked_add(len)
            .ok_or_else(|| corrupt("pack entry length overflow"))?;
        let entry_end = off
            .checked_add(total)
            .filter(|&e| e <= end)
            .ok_or_else(|| corrupt("pack entry exceeds used region"))?;
        if (pack_u64(p, off)?, pack_u64(p, off + 8)?) == key {
            return Ok(Some((off, total)));
        }
        off = entry_end;
    }
    Ok(None)
}

/// Copies the raw bytes of the entry keyed `key` off a pack page.
// analyze: validates(offset|len)
fn pack_read(p: &PageBuf, key: (u64, u64)) -> Result<Vec<u8>> {
    match pack_find(p, key)? {
        Some((off, total)) => Ok(p.slice(off, total).to_vec()),
        None => Err(corrupt("directory points at a missing pack entry")),
    }
}

/// Appends an encoded entry to a pack page if it fits.
fn pack_try_add(p: &mut PageBuf, bytes: &[u8]) -> Result<bool> {
    let (n, end) = pack_header(p)?;
    let new_end = match end.checked_add(bytes.len()) {
        Some(e) if e <= PAGE_SIZE => e,
        _ => return Ok(false),
    };
    p.put_slice(end, bytes);
    let used16 =
        u16::try_from(new_end - PACK_HDR).map_err(|_| corrupt("pack page used-bytes overflow"))?;
    let n16 = u16::try_from(n + 1).map_err(|_| corrupt("pack entry count overflow"))?;
    p.put_u16(2, n16);
    p.put_u16(4, used16);
    Ok(true)
}

/// Removes the entry keyed `key` from a pack page.
fn pack_remove(p: &mut PageBuf, key: (u64, u64)) -> Result<()> {
    let (off, total) =
        pack_find(p, key)?.ok_or_else(|| corrupt("directory points at a missing pack entry"))?;
    let (n, end) = pack_header(p)?;
    let tail = p.slice(off + total, end - (off + total)).to_vec();
    p.put_slice(off, &tail);
    // Zero the freed region so stale bytes never alias a live entry.
    let freed_at = off + tail.len();
    p.put_slice(freed_at, &vec![0u8; end - freed_at]);
    let used16 = u16::try_from(end - PACK_HDR - total)
        .map_err(|_| corrupt("pack page used-bytes overflow"))?;
    p.put_u16(2, u16::try_from(n.saturating_sub(1)).unwrap_or(0));
    p.put_u16(4, used16);
    Ok(())
}

/// Turns a non-zero fill-page meta slot (`id + 1` biased) into a checked
/// [`PageId`]. A raw slot value is attacker-controlled disk state: reject
/// anything that cannot be a page id rather than wrapping.
// analyze: validates(pageid)
fn page_id_from_meta(raw: u64) -> Result<PageId> {
    if raw == 0 || raw > u64::from(u32::MAX) {
        return Err(corrupt("fill page meta slot out of range"));
    }
    u32::try_from(raw - 1)
        .map(PageId)
        .map_err(|_| corrupt("fill page meta slot out of range"))
}

/// Stores an encoded block, preferring the current fill page.
///
/// Returns the pack page that received the entry and updates the fill-page
/// meta slot when a new page is opened.
fn place_block(pool: &BufferPool, bytes: &[u8]) -> Result<PageId> {
    let fill = pool.meta(SLOT_FILL);
    if fill != 0 {
        let id = page_id_from_meta(fill)?;
        let added = pool.with_page_mut(id, |p| {
            if is_pack(p) {
                pack_try_add(p, bytes)
            } else {
                Ok(false)
            }
        })??;
        if added {
            return Ok(id);
        }
    }
    let id = pool.allocate()?;
    block_value(id)?;
    let added = pool.with_page_mut(id, |p| {
        pack_init(p);
        pack_try_add(p, bytes)
    })??;
    if !added {
        return Err(corrupt("encoded block exceeds pack page capacity"));
    }
    pool.set_meta(SLOT_FILL, u64::from(id.0) + 1)?;
    Ok(id)
}

/// True when a pack page holds no entries. The raw count never leaves
/// this function — only the comparison does.
// analyze: validates(count)
fn pack_is_empty(p: &PageBuf) -> bool {
    is_pack(p) && pack_entry_count(p) == 0
}

/// Frees a pack page once its last entry is removed.
fn free_if_empty(pool: &BufferPool, id: PageId) -> Result<()> {
    let empty = pool.with_page(id, |p| pack_is_empty(p))?;
    if empty {
        if pool.meta(SLOT_FILL) == u64::from(id.0) + 1 {
            pool.set_meta(SLOT_FILL, 0)?;
        }
        pool.free(id)?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Bulk load
// ---------------------------------------------------------------------------

/// Bulk loads the inverted directory from `(gram, treeId) -> count` rows
/// sorted ascending. With `compress` set, the row sequence is partitioned
/// into ~[`MAX_BLOCK_ROWS`]-row blocks across gram boundaries; otherwise
/// every row is inline (the row-per-posting ablation, still a valid v3
/// store).
pub(crate) fn bulk_load_inverted(
    pool: &BufferPool,
    dir: &BTree<'_>,
    rows: &[Row],
    compress: bool,
) -> Result<()> {
    let mut dir_rows: Vec<((u64, u64), u32)> = Vec::new();
    if !compress {
        for &(k, c) in rows {
            dir_rows.push((k, inline_value(c)?));
        }
    } else {
        for group in rows.chunks(MAX_BLOCK_ROWS) {
            if group.len() < BLOCK_MIN {
                for &(k, c) in group {
                    dir_rows.push((k, inline_value(c)?));
                }
                continue;
            }
            for chunk in chunk_rows(group)? {
                let last = chunk.last().map(|r| r.0).unwrap_or((0, 0));
                let bytes = encode_block(chunk)?;
                let page = place_block(pool, &bytes)?;
                dir_rows.push((last, block_value(page)?));
            }
        }
    }
    dir.bulk_load(dir_rows)?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Probing
// ---------------------------------------------------------------------------

/// Decode-side counters surfaced through `LookupStats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct ProbeCounters {
    /// Posting rows materialised (inline rows plus decoded block rows).
    pub rows: u64,
    /// Posting blocks Elias-Fano decoded.
    pub blocks_decoded: u64,
    /// Posting blocks skipped on per-block metadata without decoding.
    pub blocks_skipped: u64,
    /// Payload bytes run through the block decoder.
    pub bytes_decoded: u64,
}

/// Reads and decodes the block keyed `key` from a pack page.
pub(crate) fn read_block(
    pool: &BufferPool,
    page: PageId,
    key: (u64, u64),
    counters: &mut ProbeCounters,
) -> Result<Decoded> {
    let bytes = pool.with_page(page, |p| pack_read(p, key))??;
    counters.blocks_decoded += 1;
    counters.bytes_decoded += u64::try_from(bytes.len()).unwrap_or(u64::MAX);
    let decoded = decode_block(&bytes)?;
    if decoded.last != key {
        return Err(corrupt("pack entry key disagrees with directory"));
    }
    Ok(decoded)
}

/// One-block memo for probe loops. Query grams are probed in ascending
/// order and multi-gram blocks hold ~[`MAX_BLOCK_ROWS`] rows, so
/// consecutive grams usually land in the same block — memoising the last
/// entry's validated bytes and parsed [`Layout`] turns O(grams) page
/// reads, CRC passes and header parses into O(blocks touched).
#[derive(Default)]
pub(crate) struct BlockCache {
    entry: Option<((u32, (u64, u64)), Vec<u8>, Layout)>,
}

impl BlockCache {
    /// Streams the rows of `gram` from the block keyed `key` on `page`.
    /// The entry bytes are copied off the page, CRC-verified and
    /// layout-parsed only on a memo miss (counted in `counters`); the
    /// gram's rows are then decoded selectively without materialising the
    /// rest of the block. Returns `false` if `f` asked to stop early.
    pub(crate) fn for_each_gram(
        &mut self,
        pool: &BufferPool,
        page: PageId,
        key: (u64, u64),
        gram: u64,
        counters: &mut ProbeCounters,
        f: &mut impl FnMut(u64, u32) -> bool,
    ) -> Result<bool> {
        let tag = (page.0, key);
        let hit = matches!(&self.entry, Some((t, _, _)) if *t == tag);
        if !hit {
            let bytes = pool.with_page(page, |p| pack_read(p, key))??;
            counters.blocks_decoded += 1;
            counters.bytes_decoded += u64::try_from(bytes.len()).unwrap_or(u64::MAX);
            let layout = parse_layout(&bytes)?;
            check_crc(&bytes)?;
            if layout.last != key {
                return Err(corrupt("pack entry key disagrees with directory"));
            }
            self.entry = Some((tag, bytes, layout));
        }
        match &self.entry {
            Some((_, bytes, layout)) => {
                let s = sections_of(bytes, layout)?;
                for_each_gram_in_sections(&s, gram, counters, f)
            }
            None => Err(corrupt("block cache lost its entry")),
        }
    }

    /// The first `(gram, treeId)` of the block keyed `key` — from the memo
    /// when it holds that block, otherwise straight from the entry header
    /// on the pack page. The per-block metadata that lets probes skip
    /// boundary blocks without a decode (and, on a memo hit, without even
    /// a page access).
    pub(crate) fn peek_first(
        &self,
        pool: &BufferPool,
        page: PageId,
        key: (u64, u64),
    ) -> Result<(u64, u64)> {
        match &self.entry {
            Some((tag, _, layout)) if *tag == (page.0, key) => Ok(layout.first),
            _ => peek_block_first(pool, page, key),
        }
    }
}

/// Reads the first `(gram, treeId)` of the block keyed `key` straight from
/// its entry header — the per-block metadata that lets probes skip blocks
/// without decoding them.
// analyze: untrusted-source
pub(crate) fn peek_block_first(
    pool: &BufferPool,
    page: PageId,
    key: (u64, u64),
) -> Result<(u64, u64)> {
    pool.with_page(page, |p| {
        let (off, _) = pack_find(p, key)?
            .ok_or_else(|| corrupt("directory points at a missing pack entry"))?;
        Ok((pack_u64(p, off + 16)?, pack_u64(p, off + 24)?))
    })?
}

/// The directory rows that can hold postings of `gram`: every row keyed
/// inside the gram plus the first row keyed past it (whose block may
/// still start inside the gram).
fn gram_dir_rows(dir: &BTree<'_>, gram: u64) -> Result<Vec<((u64, u64), u32)>> {
    let mut rows = Vec::new();
    dir.for_each_range((gram, 0), (u64::MAX, u64::MAX), |(g, t), v| {
        rows.push(((g, t), v));
        g == gram
    })?;
    Ok(rows)
}

/// Row estimate for `gram`'s postings from one directory range walk — no
/// block decode, no pack-page reads. Inline rows count one (exact).
/// Blocks are keyed by their *last* row and may span gram boundaries, so
/// only blocks beyond the first keyed inside the gram are known to start
/// inside it too: those count the per-block cap, while the first such
/// block and the boundary block just past the gram (each possibly holding
/// only a handful of this gram's rows) count [`BLOCK_MIN`]. Deliberately
/// an *estimate*, not a bound: it feeds the lookup planner's skip-cost
/// ordering only, and any value is correct — over-counting a straddled
/// gram would make the planner skip it and then pay more in compensation
/// reads than the probe it avoided.
pub(crate) fn estimate_rows(dir: &BTree<'_>, gram: u64) -> Result<u64> {
    let cap = u64::try_from(MAX_BLOCK_ROWS).unwrap_or(u64::MAX);
    let straddle = u64::try_from(BLOCK_MIN).unwrap_or(u64::MAX);
    let mut rows = 0u64;
    let mut blocks_inside = 0u64;
    dir.for_each_range((gram, 0), (u64::MAX, u64::MAX), |(g, _), raw| {
        match dir_value(raw) {
            DirValue::Inline(_) => {
                if g == gram {
                    rows += 1;
                }
            }
            DirValue::Block(_) => {
                if g == gram {
                    rows += if blocks_inside == 0 { straddle } else { cap };
                    blocks_inside += 1;
                } else {
                    rows += straddle;
                }
            }
        }
        g == gram
    })?;
    Ok(rows)
}

/// Streams every posting of `gram` in ascending treeId order.
///
/// `f` receives `(treeId, count)` and returns `false` to stop early.
/// `cache` memoises block decodes across the caller's probe loop.
pub(crate) fn for_each_posting(
    pool: &BufferPool,
    dir: &BTree<'_>,
    gram: u64,
    cache: &mut BlockCache,
    counters: &mut ProbeCounters,
    mut f: impl FnMut(u64, u32) -> bool,
) -> Result<()> {
    for ((g, t), raw) in gram_dir_rows(dir, gram)? {
        match dir_value_checked(raw)? {
            DirValue::Inline(c) => {
                if g != gram {
                    // The boundary row: an inline posting of a later gram.
                    return Ok(());
                }
                counters.rows += 1;
                if !f(t, c) {
                    return Ok(());
                }
            }
            DirValue::Block(page) => {
                if g != gram && cache.peek_first(pool, page, (g, t))?.0 > gram {
                    // Boundary block that starts past the gram: skip on
                    // header metadata, no decode.
                    counters.blocks_skipped += 1;
                    return Ok(());
                }
                if !cache.for_each_gram(pool, page, (g, t), gram, counters, &mut f)? {
                    return Ok(());
                }
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Point maintenance
// ---------------------------------------------------------------------------

/// The first directory entry at or after `(gram, tid)`, if any.
fn dir_entry_at_or_after(
    dir: &BTree<'_>,
    gram: u64,
    tid: u64,
) -> Result<Option<((u64, u64), u32)>> {
    let mut found = None;
    dir.for_each_range((gram, tid), (u64::MAX, u64::MAX), |k, v| {
        found = Some((k, v));
        false
    })?;
    Ok(found)
}

/// Removes the entry keyed `old_key` (on `old_page`) and re-inserts
/// `rows` as one or more freshly placed blocks. The general rewrite path:
/// handles key changes, page changes, and splits in one sweep.
fn reinsert_chunks(
    pool: &BufferPool,
    dir: &BTree<'_>,
    old_key: (u64, u64),
    old_page: PageId,
    rows: &[Row],
) -> Result<()> {
    pool.with_page_mut(old_page, |p| pack_remove(p, old_key))??;
    dir.delete(old_key)?;
    for chunk in chunk_rows(rows)? {
        let last = chunk.last().map(|r| r.0).unwrap_or((0, 0));
        let bytes = encode_block(chunk)?;
        let page = place_block(pool, &bytes)?;
        dir.insert(last, block_value(page)?)?;
    }
    free_if_empty(pool, old_page)?;
    Ok(())
}

/// Rewrites the block keyed `old_key` with new rows, updating the
/// directory when the key or the pack page changes and splitting when the
/// rows no longer fit one block. `rows` must be non-empty.
fn rewrite_block(
    pool: &BufferPool,
    dir: &BTree<'_>,
    old_key: (u64, u64),
    old_page: PageId,
    rows: &[Row],
) -> Result<()> {
    if rows.len() > MAX_BLOCK_ROWS || plan_block(rows)?.total > PACK_CAPACITY {
        return reinsert_chunks(pool, dir, old_key, old_page, rows);
    }
    let new_key = rows.last().map(|r| r.0).unwrap_or((0, 0));
    let bytes = encode_block(rows)?;
    // Try to reuse the slot on the same page: remove then re-add.
    let readded = pool.with_page_mut(old_page, |p| {
        pack_remove(p, old_key)?;
        pack_try_add(p, &bytes)
    })??;
    let page = if readded {
        old_page
    } else {
        let page = place_block(pool, &bytes)?;
        free_if_empty(pool, old_page)?;
        page
    };
    if new_key != old_key {
        dir.delete(old_key)?;
        dir.insert(new_key, block_value(page)?)?;
    } else if page != old_page {
        dir.insert(old_key, block_value(page)?)?;
    }
    Ok(())
}

/// Inserts or overwrites the posting `(gram, tid) -> count`.
///
/// Runs inside the caller's open transaction. New postings that do not fall
/// inside an existing block are inserted inline; a long enough run of
/// consecutive inline postings is collapsed into a block afterwards.
pub(crate) fn upsert_posting(
    pool: &BufferPool,
    dir: &BTree<'_>,
    gram: u64,
    tid: u64,
    count: u32,
) -> Result<()> {
    let inline = inline_value(count)?;
    match dir_entry_at_or_after(dir, gram, tid)? {
        None => {
            dir.insert((gram, tid), inline)?;
            maybe_collapse(pool, dir, gram)
        }
        Some((key, raw)) => match dir_value(raw) {
            DirValue::Inline(_) if key == (gram, tid) => {
                dir.insert((gram, tid), inline)?;
                Ok(())
            }
            DirValue::Inline(_) => {
                dir.insert((gram, tid), inline)?;
                maybe_collapse(pool, dir, gram)
            }
            DirValue::Block(page) => {
                if peek_block_first(pool, page, key)? > (gram, tid) {
                    // The block starts past the posting: it goes inline in
                    // the gap before the block.
                    dir.insert((gram, tid), inline)?;
                    return maybe_collapse(pool, dir, gram);
                }
                let mut decoded = read_block(pool, page, key, &mut ProbeCounters::default())?;
                match decoded.rows.binary_search_by_key(&(gram, tid), |r| r.0) {
                    Ok(i) => {
                        if let Some(r) = decoded.rows.get_mut(i) {
                            r.1 = count;
                        }
                    }
                    Err(i) => decoded
                        .rows
                        .insert(i.min(decoded.rows.len()), ((gram, tid), count)),
                }
                rewrite_block(pool, dir, key, page, &decoded.rows)
            }
        },
    }
}

/// Removes the posting `(gram, tid)`. Returns `false` if it was absent.
pub(crate) fn remove_posting(
    pool: &BufferPool,
    dir: &BTree<'_>,
    gram: u64,
    tid: u64,
) -> Result<bool> {
    match dir_entry_at_or_after(dir, gram, tid)? {
        None => Ok(false),
        Some((key, raw)) => match dir_value(raw) {
            DirValue::Inline(_) if key == (gram, tid) => {
                dir.delete((gram, tid))?;
                Ok(true)
            }
            DirValue::Inline(_) => Ok(false),
            DirValue::Block(page) => {
                if peek_block_first(pool, page, key)? > (gram, tid) {
                    return Ok(false);
                }
                let mut decoded = read_block(pool, page, key, &mut ProbeCounters::default())?;
                let i = match decoded.rows.binary_search_by_key(&(gram, tid), |r| r.0) {
                    Ok(i) => i,
                    Err(_) => return Ok(false),
                };
                decoded.rows.remove(i);
                if decoded.rows.is_empty() {
                    pool.with_page_mut(page, |p| pack_remove(p, key))??;
                    free_if_empty(pool, page)?;
                    dir.delete(key)?;
                } else {
                    rewrite_block(pool, dir, key, page, &decoded.rows)?;
                }
                Ok(true)
            }
        },
    }
}

/// Collapses a run of consecutive inline postings starting at or after
/// `(gram, 0)` into a block once it reaches [`COLLAPSE_MIN`] rows,
/// bounding directory growth under point inserts between bulk rebuilds.
/// Runs may cross gram boundaries — blocks are not per-gram.
fn maybe_collapse(pool: &BufferPool, dir: &BTree<'_>, gram: u64) -> Result<()> {
    let mut run: Vec<Row> = Vec::new();
    let mut best: Option<Vec<Row>> = None;
    dir.for_each_range((gram, 0), (u64::MAX, u64::MAX), |k, v| {
        match dir_value(v) {
            DirValue::Inline(c) => {
                run.push((k, c));
                if run.len() >= MAX_BLOCK_ROWS {
                    best = Some(std::mem::take(&mut run));
                    return false;
                }
            }
            DirValue::Block(_) => {
                if run.len() >= COLLAPSE_MIN {
                    best = Some(std::mem::take(&mut run));
                }
                return false;
            }
        }
        true
    })?;
    if best.is_none() && run.len() >= COLLAPSE_MIN {
        best = Some(run);
    }
    let Some(rows) = best else { return Ok(()) };
    // Delete every inline key of the run, then insert one block row per
    // chunk (inline keys never sit inside a block's row range, so the new
    // blocks stay disjoint from their neighbours).
    let ops: Vec<((u64, u64), Option<u32>)> = rows.iter().map(|&(k, _)| (k, None)).collect();
    dir.apply_batch_sorted(ops)?;
    for chunk in chunk_rows(&rows)? {
        let last = chunk.last().map(|r| r.0).unwrap_or((0, 0));
        let bytes = encode_block(chunk)?;
        let page = place_block(pool, &bytes)?;
        dir.insert(last, block_value(page)?)?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Verification support
// ---------------------------------------------------------------------------

/// Expands every directory row of the inverted relation into posting rows,
/// verifying block structure along the way. Returns the posting rows (in
/// directory order), the number of blocks, and the distinct pack pages.
pub(crate) fn expand_all(
    pool: &BufferPool,
    dir: &BTree<'_>,
) -> Result<(Vec<Row>, u64, Vec<PageId>)> {
    let mut dir_rows: Vec<((u64, u64), u32)> = Vec::new();
    dir.for_each_range((u64::MIN, u64::MIN), (u64::MAX, u64::MAX), |k, v| {
        dir_rows.push((k, v));
        true
    })?;
    let mut rows = Vec::new();
    let mut blocks = 0u64;
    let mut pages: Vec<PageId> = Vec::new();
    let mut counters = ProbeCounters::default();
    for (key, raw) in dir_rows {
        match dir_value_checked(raw)? {
            DirValue::Inline(c) => {
                rows.push((key, c));
            }
            DirValue::Block(page) => {
                if !pages.contains(&page) {
                    // First visit: walk the whole entry chain, validating
                    // that it exactly fills the page's used region —
                    // [`pack_find`] alone stops at its match.
                    pool.with_page(page, |p| pack_entries(p))??;
                    pages.push(page);
                }
                let decoded = read_block(pool, page, key, &mut counters)?;
                blocks += 1;
                rows.extend(decoded.rows);
            }
        }
    }
    Ok((rows, blocks, pages))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `n` rows spread over `grams` distinct grams with the given treeId
    /// stride.
    fn sample_rows(n: u64, grams: u64, stride: u64) -> Vec<Row> {
        (0..n)
            .map(|i| {
                let g = 1000 + (i % grams.max(1)) * 77;
                let t = 100 + (i / grams.max(1)) * stride;
                ((g, t), u32::try_from(i % 7 + 1).unwrap_or(1))
            })
            .collect::<Vec<_>>()
            .tap_sort()
    }

    trait TapSort {
        fn tap_sort(self) -> Self;
    }
    impl TapSort for Vec<Row> {
        fn tap_sort(mut self) -> Self {
            self.sort_unstable_by_key(|&(k, _)| k);
            self
        }
    }

    #[test]
    fn roundtrip_dense_and_sparse() {
        for grams in [1u64, 2, 5, 64] {
            for stride in [1u64, 13, 1_000_000] {
                for n in [1u64, 2, 7, 64, 256] {
                    let rows = sample_rows(n, grams.min(n), stride);
                    let bytes = encode_block(&rows).unwrap();
                    let back = decode_block(&bytes).unwrap();
                    assert_eq!(back.rows, rows, "grams {grams} stride {stride} n {n}");
                    assert_eq!(back.first, rows.first().unwrap().0);
                    assert_eq!(back.last, rows.last().unwrap().0);
                }
            }
        }
    }

    #[test]
    fn single_gram_dense_runs_compress_hard() {
        // 256 postings of one gram over 1000 consecutive trees with unit
        // counts: the dominant shape in a bulk-loaded skewed collection.
        let rows: Vec<Row> = (0..256u64).map(|t| ((42, t * 3), 1)).collect();
        let bytes = encode_block(&rows).unwrap();
        // tids fit 10 bits each; everything else is near-zero overhead.
        assert!(
            bytes.len() < ENTRY_HDR + PREFIX + 4 + 256 * 2,
            "len {}",
            bytes.len()
        );
        assert_eq!(decode_block(&bytes).unwrap().rows, rows);
    }

    /// Regression: an inflated on-disk row count must be rejected by the
    /// layout parse — before it can size any decode allocation. The cap
    /// is structural (`MAX_BLOCK_ROWS`), not the CRC: a forged checksum
    /// changes nothing.
    #[test]
    fn inflated_row_count_is_rejected_before_allocating() {
        let rows = sample_rows(64, 8, 13);
        let Ok(mut bytes) = encode_block(&rows) else {
            panic!("fixture block must encode");
        };
        for n in [0u16, 257, 4096, u16::MAX] {
            bytes[32..34].copy_from_slice(&n.to_le_bytes());
            let crc = crate::crc::crc32(&bytes[..bytes.len() - 4]);
            let at = bytes.len() - 4;
            bytes[at..].copy_from_slice(&crc.to_le_bytes());
            assert!(
                decode_block(&bytes).is_err(),
                "row count {n} must be out of range"
            );
        }
    }

    /// Regression: a pack page advertising more entries than could
    /// physically fit must be rejected by the header clamp — previously
    /// `pack_entries` sized a `Vec` straight from the raw u16 (up to
    /// ~64 Ki spurious capacity per corrupted page).
    #[test]
    fn inflated_pack_entry_count_is_rejected_by_the_header_clamp() {
        let mut p = PageBuf::zeroed();
        pack_init(&mut p);
        assert_eq!(pack_header(&p).ok(), Some((0, PACK_HDR)));
        p.put_u16(2, u16::MAX); // entry count: impossible
        assert!(pack_header(&p).is_err());
        assert!(pack_entries(&p).is_err());
        p.put_u16(2, 0);
        p.put_u16(4, u16::MAX); // used bytes: beyond the page
        assert!(pack_header(&p).is_err());
        // Largest consistent claim: capacity full of minimal entries.
        p.put_u16(2, u16::try_from(PACK_CAPACITY / MIN_ENTRY).unwrap_or(0));
        p.put_u16(4, u16::try_from(PACK_CAPACITY).unwrap_or(0));
        assert!(pack_header(&p).is_ok());
    }

    #[test]
    fn encode_rejects_bad_input() {
        assert!(encode_block(&[]).is_err());
        assert!(encode_block(&[((1, 5), 1), ((1, 5), 1)]).is_err());
        assert!(encode_block(&[((1, 5), 1), ((1, 4), 1)]).is_err());
        assert!(encode_block(&[((2, 5), 1), ((1, 9), 1)]).is_err());
        assert!(encode_block(&[((1, 5), 0)]).is_err());
        let too_many: Vec<Row> = (0..257u64).map(|i| ((1, i), 1)).collect();
        assert!(encode_block(&too_many).is_err());
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let rows = sample_rows(50, 7, 17);
        let bytes = encode_block(&rows).unwrap();
        for bit in 0..bytes.len() * 8 {
            let mut bad = bytes.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            match decode_block(&bad) {
                Err(StoreError::Corrupt(_)) => {}
                Err(e) => panic!("flip at bit {bit}: unexpected error {e:?}"),
                Ok(d) => {
                    // A flip that survives CRC must not silently change the
                    // decoded rows (CRC-32 catches all single-bit flips, so
                    // this should be unreachable).
                    panic!("flip at bit {bit} went undetected: {d:?}");
                }
            }
        }
    }

    #[test]
    fn truncation_is_detected() {
        let rows = sample_rows(30, 4, 5);
        let bytes = encode_block(&rows).unwrap();
        for cut in 0..bytes.len() {
            assert!(
                matches!(decode_block(&bytes[..cut]), Err(StoreError::Corrupt(_))),
                "truncation to {cut} bytes went undetected"
            );
        }
    }

    #[test]
    fn valid_crc_but_non_monotone_is_detected() {
        // Craft an entry whose header says first > last but with a correct
        // CRC: structural checks must still reject it.
        let rows = sample_rows(10, 3, 3);
        let mut bytes = encode_block(&rows).unwrap();
        // Swap the last/first header pairs, then fix up the CRC.
        let last: [u8; 16] = bytes[0..16].try_into().unwrap();
        let first: [u8; 16] = bytes[16..32].try_into().unwrap();
        bytes[0..16].copy_from_slice(&first);
        bytes[16..32].copy_from_slice(&last);
        let body_len = bytes.len() - 4;
        let crc = crc32(&bytes[..body_len]).to_le_bytes();
        bytes[body_len..].copy_from_slice(&crc);
        assert!(matches!(decode_block(&bytes), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn decode_never_panics_on_random_bytes() {
        // Deterministic xorshift fuzzing: decode must return, never panic.
        let mut state = 0x243f_6a88_85a3_08d3u64;
        for len in [0usize, 1, 27, 42, 46, 100, 500, 4000] {
            for _ in 0..50 {
                let mut bytes = vec![0u8; len];
                for b in bytes.iter_mut() {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    *b = u8::try_from(state & 0xff).unwrap_or(0);
                }
                let _ = decode_block(&bytes);
            }
        }
    }

    #[test]
    fn adversarial_rows_chunk_to_fitting_blocks() {
        // 256 rows of distinct far-apart grams, 64-bit treeIds and max
        // counts: too big for one pack page, so chunking must split them
        // while preserving order and content.
        let rows: Vec<Row> = (0..256u64)
            .map(|i| {
                (
                    (i * ((1u64 << 50) / 256), u64::MAX - 1024 + i),
                    u32::MAX - 1,
                )
            })
            .collect();
        let chunks = chunk_rows(&rows).unwrap();
        assert!(chunks.len() >= 2, "adversarial rows must split");
        let mut rejoined = Vec::new();
        for chunk in chunks {
            let bytes = encode_block(chunk).unwrap();
            assert!(bytes.len() <= PACK_CAPACITY, "len {}", bytes.len());
            rejoined.extend(decode_block(&bytes).unwrap().rows);
        }
        assert_eq!(rejoined, rows);
    }

    #[test]
    fn typical_mixed_block_fits_a_pack_page() {
        // The bulk-load shape: 256 rows over a few dozen grams, small ids.
        let rows = sample_rows(256, 40, 2);
        let bytes = encode_block(&rows).unwrap();
        assert!(bytes.len() <= PACK_CAPACITY, "len {}", bytes.len());
        assert_eq!(decode_block(&bytes).unwrap().rows, rows);
    }
}
