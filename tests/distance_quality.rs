//! Approximation quality of the pq-gram distance against the exact
//! Zhang–Shasha tree edit distance — the property the 2005 companion paper
//! establishes and this paper's lookups rely on.

use pqgram::{build_index, pq_distance, tree_edit_distance, LabelTable, PQParams, ScriptConfig};
use pqgram_tree::generate::{random_tree, RandomTreeConfig};
use pqgram_tree::record_script;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn identical_trees_have_both_distances_zero() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut lt = LabelTable::new();
    let t = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(60, 5));
    assert_eq!(tree_edit_distance(&t, &t), 0);
    let idx = build_index(&t, &lt, PQParams::default());
    assert_eq!(pq_distance(&idx, &idx), Ok(0.0));
}

#[test]
fn pq_distance_grows_with_edit_count() {
    // Apply increasing numbers of edits; the pq-gram distance to the
    // original must grow (weakly) with the true edit distance budget.
    let params = PQParams::default();
    let mut lt = LabelTable::new();
    let mut rng = StdRng::seed_from_u64(2);
    let base = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(400, 6));
    let base_idx = build_index(&base, &lt, params);
    let alphabet: Vec<_> = lt.iter().map(|(s, _)| s).collect();

    let mut previous = 0.0;
    let mut distances = Vec::new();
    for edits in [1usize, 5, 25, 100, 300] {
        let mut t = base.clone();
        let mut cfg = ScriptConfig::new(edits, alphabet.clone());
        cfg.max_adopted = 1;
        record_script(&mut rng, &mut t, &cfg);
        let d = pq_distance(&base_idx, &build_index(&t, &lt, params)).unwrap();
        distances.push((edits, d));
        assert!(
            d >= previous - 0.05,
            "distance should not collapse as edits grow: {distances:?}"
        );
        previous = d;
    }
    assert!(distances[0].1 < 0.1, "one edit keeps the trees very close");
    assert!(
        distances.last().unwrap().1 > 0.4,
        "300 edits move the trees far apart"
    );
}

#[test]
fn pq_distance_ranks_like_ted_on_average() {
    // Spearman-style check: for a query and a pool of candidates at varying
    // true edit distances, the pq-gram ranking must correlate positively
    // with the exact ranking.
    let params = PQParams::new(2, 3);
    let mut lt = LabelTable::new();
    let mut rng = StdRng::seed_from_u64(3);
    let base = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(80, 5));
    let base_idx = build_index(&base, &lt, params);
    let alphabet: Vec<_> = lt.iter().map(|(s, _)| s).collect();

    let mut pairs = Vec::new();
    for edits in 0..24usize {
        let mut t = base.clone();
        let mut cfg = ScriptConfig::new(edits, alphabet.clone());
        cfg.max_adopted = 0;
        record_script(&mut rng, &mut t, &cfg);
        let pq = pq_distance(&base_idx, &build_index(&t, &lt, params)).unwrap();
        let ted = tree_edit_distance(&base, &t) as f64;
        pairs.push((pq, ted));
    }
    // Rank correlation via concordant/discordant pairs (Kendall tau).
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..pairs.len() {
        for j in i + 1..pairs.len() {
            let dp = pairs[i].0 - pairs[j].0;
            let dt = pairs[i].1 - pairs[j].1;
            if dp * dt > 0.0 {
                concordant += 1;
            } else if dp * dt < 0.0 {
                discordant += 1;
            }
        }
    }
    let tau = (concordant - discordant) as f64 / (concordant + discordant).max(1) as f64;
    assert!(tau > 0.5, "Kendall tau {tau:.3} too weak; pairs: {pairs:?}");
}

#[test]
fn pq_distance_is_bounded_and_symmetric() {
    let params = PQParams::default();
    let mut lt = LabelTable::new();
    let mut rng = StdRng::seed_from_u64(4);
    for _ in 0..20 {
        let a = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(50, 4));
        let b = random_tree(&mut rng, &mut lt, &RandomTreeConfig::new(70, 4));
        let (ia, ib) = (build_index(&a, &lt, params), build_index(&b, &lt, params));
        let d = pq_distance(&ia, &ib).unwrap();
        assert!((0.0..=1.0).contains(&d));
        assert_eq!(d, pq_distance(&ib, &ia).unwrap());
    }
}
