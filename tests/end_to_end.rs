//! Cross-crate integration: XML → tree → index → persistent store →
//! incremental maintenance → approximate lookup.

use pqgram::{
    build_index, parse_document, record_script, update_index, write_document, IndexStore,
    LabelTable, PQParams, ScriptConfig, TreeId, WriteOptions,
};
use pqgram_tree::generate::{dblp, xmark};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pqgram-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(name);
    std::fs::remove_file(&p).ok();
    let mut j = p.as_os_str().to_owned();
    j.push("-journal");
    std::fs::remove_file(PathBuf::from(j)).ok();
    p
}

#[test]
fn xml_to_persistent_index_to_lookup() {
    let params = PQParams::default();
    let mut labels = LabelTable::new();

    // Generate documents, serialize to XML, parse back (exercising the
    // whole XML path), index, and persist.
    let mut rng = StdRng::seed_from_u64(1);
    let mut store = IndexStore::create(&tmp("e2e.pqg"), params).unwrap();
    let mut parsed = Vec::new();
    for i in 0..8u64 {
        let tree = if i % 2 == 0 {
            xmark(&mut rng, &mut labels, 1_500)
        } else {
            dblp(&mut rng, &mut labels, 1_500)
        };
        let xml = write_document(&tree, &labels, &WriteOptions::default());
        let back = parse_document(&xml, &mut labels).unwrap();
        assert_eq!(back.node_count(), tree.node_count(), "XML roundtrip");
        store
            .put_tree(TreeId(i), &build_index(&back, &labels, params))
            .unwrap();
        parsed.push(back);
    }

    // Querying with one of the documents finds it first, at distance 0.
    let query = build_index(&parsed[3], &labels, params);
    let hits = store.lookup(&query, 0.9).unwrap();
    assert_eq!(hits[0].tree_id, TreeId(3));
    assert!(hits[0].distance.abs() < 1e-12);
    // XMark documents rank far from DBLP documents.
    let xmark_hits = store
        .lookup(&build_index(&parsed[0], &labels, params), 0.5)
        .unwrap();
    assert!(xmark_hits.iter().all(|h| h.tree_id.0 % 2 == 0));
}

#[test]
fn persistent_incremental_update_survives_reopen() {
    let params = PQParams::new(2, 3);
    let path = tmp("reopen-update.pqg");
    let mut labels = LabelTable::new();
    let mut rng = StdRng::seed_from_u64(2);
    let mut tree = xmark(&mut rng, &mut labels, 5_000);

    {
        let mut store = IndexStore::create(&path, params).unwrap();
        store
            .put_tree(TreeId(0), &build_index(&tree, &labels, params))
            .unwrap();
    }

    // Evolve the document; update the reopened store from the log.
    let alphabet: Vec<_> = labels.iter().map(|(s, _)| s).collect();
    let (log, _) = record_script(&mut rng, &mut tree, &ScriptConfig::new(150, alphabet));
    {
        let mut store = IndexStore::open(&path).unwrap();
        store
            .update_from_log(TreeId(0), &tree, &labels, &log)
            .unwrap();
    }

    // Reopen once more and verify against a rebuild.
    let store = IndexStore::open(&path).unwrap();
    let stored = store.tree_index(TreeId(0)).unwrap().unwrap();
    assert_eq!(stored, build_index(&tree, &labels, params));
}

#[test]
fn in_memory_and_persistent_updates_agree() {
    let params = PQParams::default();
    let mut labels = LabelTable::new();
    let mut rng = StdRng::seed_from_u64(3);
    let mut tree = dblp(&mut rng, &mut labels, 3_000);
    let old = build_index(&tree, &labels, params);

    let mut store = IndexStore::create(&tmp("agree.pqg"), params).unwrap();
    store.put_tree(TreeId(0), &old).unwrap();

    let alphabet: Vec<_> = labels.iter().map(|(s, _)| s).collect();
    let (log, _) = record_script(&mut rng, &mut tree, &ScriptConfig::new(80, alphabet));

    let in_memory = update_index(&old, &tree, &labels, &log).unwrap().index;
    store
        .update_from_log(TreeId(0), &tree, &labels, &log)
        .unwrap();
    let persistent = store.tree_index(TreeId(0)).unwrap().unwrap();
    assert_eq!(in_memory, persistent);
}

#[test]
fn multi_document_store_with_mixed_updates() {
    // Several documents in one store; some get updated, some don't; lookups
    // reflect the current state.
    let params = PQParams::default();
    let mut labels = LabelTable::new();
    let mut rng = StdRng::seed_from_u64(4);
    let mut store = IndexStore::create(&tmp("multi.pqg"), params).unwrap();

    let mut docs: Vec<_> = (0..5).map(|_| dblp(&mut rng, &mut labels, 2_000)).collect();
    for (i, d) in docs.iter().enumerate() {
        store
            .put_tree(TreeId(i as u64), &build_index(d, &labels, params))
            .unwrap();
    }
    let alphabet: Vec<_> = labels.iter().map(|(s, _)| s).collect();
    for i in [1usize, 3] {
        let (log, _) = record_script(
            &mut rng,
            &mut docs[i],
            &ScriptConfig::new(40, alphabet.clone()),
        );
        store
            .update_from_log(TreeId(i as u64), &docs[i], &labels, &log)
            .unwrap();
    }
    for (i, d) in docs.iter().enumerate() {
        let stored = store.tree_index(TreeId(i as u64)).unwrap().unwrap();
        assert_eq!(stored, build_index(d, &labels, params), "doc {i}");
    }
    assert_eq!(store.tree_ids().unwrap().len(), 5);
}
