//! Quickstart: build pq-gram indexes, measure tree similarity, look up
//! similar documents in a forest, and update an index incrementally from an
//! edit log.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pqgram::{
    build_index, pq_distance, record_script, update_index, ForestIndex, LabelTable, PQParams,
    ScriptConfig, Tree, TreeId,
};
use pqgram_tree::generate::{random_tree, RandomTreeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let params = PQParams::default(); // the paper's 3,3-grams
    let mut labels = LabelTable::new();

    // ---- 1. Build two similar documents and compare them -----------------
    let mut doc = Tree::with_root(labels.intern("article"));
    let title = doc.add_child(doc.root(), labels.intern("title"));
    doc.add_child(
        title,
        labels.intern("Approximate Matching of Hierarchical Data"),
    );
    let authors = doc.add_child(doc.root(), labels.intern("authors"));
    for name in ["Augsten", "Boehlen", "Gamper"] {
        let a = doc.add_child(authors, labels.intern("author"));
        doc.add_child(a, labels.intern(name));
    }

    let mut doc2 = doc.clone();
    // A small edit: one author name changes.
    let some_leaf = doc2
        .preorder(doc2.root())
        .find(|&n| labels.name(doc2.label(n)) == "Gamper")
        .expect("present");
    doc2.apply(pqgram::EditOp::Rename {
        node: some_leaf,
        label: labels.intern("Gamper, J."),
    })
    .unwrap();

    let i1 = build_index(&doc, &labels, params);
    let i2 = build_index(&doc2, &labels, params);
    println!(
        "pq-gram distance after one rename: {:.4}",
        pq_distance(&i1, &i2).expect("same params")
    );
    println!(
        "pq-gram distance to itself:        {:.4}",
        pq_distance(&i1, &i1).expect("same params")
    );

    // ---- 2. Approximate lookup in a forest -------------------------------
    let mut rng = StdRng::seed_from_u64(42);
    let mut forest = ForestIndex::new();
    forest.insert(TreeId(0), i1.clone());
    forest.insert(TreeId(1), i2);
    for i in 2..50u64 {
        let t = random_tree(&mut rng, &mut labels, &RandomTreeConfig::new(40, 6));
        forest.insert(TreeId(i), build_index(&t, &labels, params));
    }
    let hits = forest.lookup(&i1, 0.5).expect("same params");
    println!("\nlookup(doc, tau = 0.5) over {} trees:", forest.len());
    for hit in &hits {
        println!("  {:?}  distance {:.4}", hit.tree_id, hit.distance);
    }

    // ---- 3. Incremental index maintenance --------------------------------
    // A larger document evolves through 100 edits; we keep only the log of
    // inverse operations and the final document, as in the paper.
    let mut big = random_tree(&mut rng, &mut labels, &RandomTreeConfig::new(50_000, 12));
    let old_index = build_index(&big, &labels, params);

    let alphabet: Vec<_> = labels.iter().map(|(s, _)| s).collect();
    let (log, _) = record_script(&mut rng, &mut big, &ScriptConfig::new(100, alphabet));

    let t = Instant::now();
    let outcome = update_index(&old_index, &big, &labels, &log).expect("consistent log");
    let incremental = t.elapsed();

    let t = Instant::now();
    let rebuilt = build_index(&big, &labels, params);
    let rebuild = t.elapsed();

    assert_eq!(outcome.index, rebuilt);
    println!(
        "\nindex maintenance on a {}-node tree, 100 edits:",
        big.node_count()
    );
    println!(
        "  incremental update: {incremental:>10.2?}   (+{} / -{} grams)",
        outcome.delta.additions.len(),
        outcome.delta.removals.len()
    );
    println!(
        "  full rebuild:       {rebuild:>10.2?}   ({} grams)",
        rebuilt.total()
    );
    println!(
        "  speedup:            {:>10.1}x",
        rebuild.as_secs_f64() / incremental.as_secs_f64().max(1e-9)
    );
}
