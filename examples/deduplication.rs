//! Near-duplicate detection in a bibliography — the approximate-join
//! scenario (Guha et al.) that motivates indexes for approximate lookups.
//!
//! Generates a collection of publication records, injects noisy duplicates
//! (typos, dropped fields, reordered authors), then uses approximate lookups
//! against the forest index to recover the duplicate pairs. Reports
//! precision/recall of the pq-gram distance at the chosen threshold.
//!
//! ```sh
//! cargo run --release --example deduplication
//! ```

use pqgram::{build_index, ForestIndex, LabelTable, PQParams, Tree, TreeId};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};

/// Builds one publication record tree.
fn record(labels: &mut LabelTable, authors: &[&str], title_words: &[&str], year: &str) -> Tree {
    let mut t = Tree::with_root(labels.intern("article"));
    for a in authors {
        let an = t.add_child(t.root(), labels.intern("author"));
        t.add_child(an, labels.intern(a));
    }
    let ti = t.add_child(t.root(), labels.intern("title"));
    for w in title_words {
        t.add_child(ti, labels.intern(w));
    }
    let y = t.add_child(t.root(), labels.intern("year"));
    t.add_child(y, labels.intern(year));
    t
}

/// Derives a noisy duplicate: typo one title word, maybe drop an author.
fn noisy_copy<R: Rng>(rng: &mut R, labels: &mut LabelTable, original: &Tree) -> Tree {
    let mut t = original.clone();
    // Typo: rename one random leaf.
    let leaves: Vec<_> = t.preorder(t.root()).filter(|&n| t.is_leaf(n)).collect();
    if let Some(&leaf) = leaves.choose(rng) {
        let old = labels.name(t.label(leaf)).to_string();
        let typo = labels.intern(&format!("{old}~"));
        t.apply(pqgram::EditOp::Rename {
            node: leaf,
            label: typo,
        })
        .unwrap();
    }
    // Sometimes drop a whole field.
    if rng.random_bool(0.4) {
        let fields: Vec<_> = t.children(t.root()).to_vec();
        if fields.len() > 2 {
            let &field = fields.choose(rng).unwrap();
            // Delete value leaf first, then the field node.
            for child in t.children(field).to_vec() {
                t.apply(pqgram::EditOp::Delete { node: child }).unwrap();
            }
            t.apply(pqgram::EditOp::Delete { node: field }).unwrap();
        }
    }
    t
}

fn main() {
    let params = PQParams::new(2, 3);
    let mut rng = StdRng::seed_from_u64(7);
    let mut labels = LabelTable::new();

    // 200 base records; every third one gets a noisy duplicate.
    let first_names = ["A.", "B.", "C.", "D.", "E.", "F."];
    let last_names = [
        "Smith", "Mueller", "Rossi", "Tanaka", "Kumar", "Silva", "Novak",
    ];
    let words = [
        "index",
        "tree",
        "query",
        "join",
        "approximate",
        "stream",
        "graph",
        "cache",
        "lookup",
        "edit",
        "distance",
        "gram",
        "log",
        "update",
        "xml",
        "storage",
        "page",
        "buffer",
        "scan",
        "hash",
        "partition",
        "schema",
        "label",
        "window",
        "forest",
        "profile",
        "sibling",
        "anchor",
        "matrix",
        "fingerprint",
    ];

    let mut trees: Vec<Tree> = Vec::new();
    let mut duplicate_of: Vec<Option<usize>> = Vec::new();
    for i in 0..200usize {
        let authors: Vec<String> = (0..rng.random_range(1..=3))
            .map(|_| {
                format!(
                    "{} {}",
                    first_names.choose(&mut rng).unwrap(),
                    last_names.choose(&mut rng).unwrap()
                )
            })
            .collect();
        let author_refs: Vec<&str> = authors.iter().map(String::as_str).collect();
        let title: Vec<&str> = (0..rng.random_range(4..=7))
            .map(|_| *words.choose(&mut rng).unwrap())
            .collect();
        let year = format!("{}", 1990 + rng.random_range(0..20));
        let base = record(&mut labels, &author_refs, &title, &year);
        trees.push(base);
        duplicate_of.push(None);
        if i % 3 == 0 {
            let dup = noisy_copy(&mut rng, &mut labels, trees.last().unwrap());
            trees.push(dup);
            duplicate_of.push(Some(trees.len() - 2));
        }
    }

    let mut forest = ForestIndex::new();
    let indexes: Vec<_> = trees
        .iter()
        .map(|t| build_index(t, &labels, params))
        .collect();
    for (i, idx) in indexes.iter().enumerate() {
        forest.insert(TreeId(i as u64), idx.clone());
    }
    println!(
        "collection: {} records ({} injected duplicates)",
        trees.len(),
        duplicate_of.iter().flatten().count()
    );

    // For every record, find its nearest non-identical neighbor below tau.
    let tau = 0.5;
    let (mut tp, mut fp, mut fn_) = (0usize, 0usize, 0usize);
    for (i, idx) in indexes.iter().enumerate() {
        let hits = forest.lookup_parallel(idx, tau, 4).expect("same params");
        let best_other = hits.iter().find(|h| h.tree_id.0 as usize != i);
        let predicted = best_other.map(|h| h.tree_id.0 as usize);
        let truth = duplicate_of[i].or_else(|| duplicate_of.iter().position(|&d| d == Some(i)));
        match (predicted, truth) {
            (Some(p), Some(t)) if p == t => tp += 1,
            (Some(_), _) => fp += 1,
            (None, Some(_)) => fn_ += 1,
            (None, None) => {}
        }
    }
    let precision = tp as f64 / (tp + fp).max(1) as f64;
    let recall = tp as f64 / (tp + fn_).max(1) as f64;
    println!("duplicate detection at tau = {tau}: precision {precision:.3}, recall {recall:.3}");
    assert!(
        recall > 0.9,
        "pq-gram distance should recover nearly all duplicates"
    );
}
