//! Approximate join of two document collections — the data-integration
//! scenario (Guha et al.) the pq-gram index was designed for: match records
//! across two noisy bibliographies without a shared key.
//!
//! ```sh
//! cargo run --release --example approximate_join
//! ```

use pqgram::core::join::{join, join_nested_loop};
use pqgram::{build_index, ForestIndex, LabelTable, PQParams, ScriptConfig, Tree, TreeId};
use pqgram_tree::generate::{random_tree, RandomTreeConfig};
use pqgram_tree::record_script;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let params = PQParams::new(2, 3);
    let mut rng = StdRng::seed_from_u64(2006);
    let mut labels = LabelTable::new();

    // Two collections: the right one holds noisy copies of half the left
    // records (plus unrelated records in both).
    let n = 400usize;
    let mut left = ForestIndex::new();
    let mut right = ForestIndex::new();
    let mut truth = Vec::new();
    for i in 0..n as u64 {
        let tree: Tree = random_tree(&mut rng, &mut labels, &RandomTreeConfig::new(50, 8));
        left.insert(TreeId(i), build_index(&tree, &labels, params));
        if i % 2 == 0 {
            let mut noisy = tree.clone();
            let alphabet: Vec<_> = labels.iter().map(|(s, _)| s).collect();
            record_script(&mut rng, &mut noisy, &ScriptConfig::new(4, alphabet));
            right.insert(TreeId(10_000 + i), build_index(&noisy, &labels, params));
            truth.push((TreeId(i), TreeId(10_000 + i)));
        } else {
            let unrelated = random_tree(&mut rng, &mut labels, &RandomTreeConfig::new(50, 8));
            right.insert(TreeId(10_000 + i), build_index(&unrelated, &labels, params));
        }
    }

    let tau = 0.45;
    let t = Instant::now();
    let (pairs, stats) = join(&left, &right, tau).expect("same params");
    let indexed = t.elapsed();
    let t = Instant::now();
    let reference = join_nested_loop(&left, &right, tau).expect("same params");
    let nested = t.elapsed();
    assert_eq!(pairs, reference, "the filters are lossless");

    let found = truth
        .iter()
        .filter(|&&(l, r)| pairs.iter().any(|p| p.left == l && p.right == r))
        .count();
    println!(
        "collections: {} x {} records, tau = {tau}",
        left.len(),
        right.len()
    );
    println!(
        "join: {} pairs found; {}/{} true matches recovered",
        pairs.len(),
        found,
        truth.len()
    );
    println!(
        "pruning: {} naive pairs -> {} candidates -> {} verified",
        stats.pairs_naive, stats.pairs_candidates, stats.pairs_verified
    );
    println!("indexed join: {indexed:.2?}   nested-loop join: {nested:.2?}");
    assert!(found * 10 >= truth.len() * 9, "expected >=90% recall");
}
