//! A persistent index kept in sync with an evolving document — the paper's
//! application scenario end to end, on disk.
//!
//! A DBLP-shaped document receives batches of edits. After each batch only
//! the resulting document and the log of inverse operations are available
//! (the previous version is gone). The on-disk index is updated
//! transactionally from the log and verified against a full rebuild.
//!
//! ```sh
//! cargo run --release --example incremental_sync
//! ```

use pqgram::{build_index, record_script, IndexStore, LabelTable, PQParams, ScriptConfig, TreeId};
use pqgram_tree::generate::dblp;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let dir = std::env::temp_dir().join(format!("pqgram-sync-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("bibliography.pqg");

    let params = PQParams::default();
    let mut rng = StdRng::seed_from_u64(2006);
    let mut labels = LabelTable::new();
    let mut document = dblp(&mut rng, &mut labels, 100_000);
    println!("document: DBLP-shaped, {} nodes", document.node_count());

    // Initial indexing.
    let t = Instant::now();
    let initial = build_index(&document, &labels, params);
    println!(
        "initial index: {} grams ({} distinct), built in {:.2?}",
        initial.total(),
        initial.distinct(),
        t.elapsed()
    );
    let mut store = IndexStore::create(&path, params).expect("create store");
    store
        .put_tree(TreeId(1), &initial)
        .expect("store initial index");

    // Five edit batches of growing size.
    let alphabet: Vec<_> = labels.iter().map(|(s, _)| s).collect();
    for batch in [1usize, 10, 50, 200, 1000] {
        let (log, _) = record_script(
            &mut rng,
            &mut document,
            &ScriptConfig::new(batch, alphabet.clone()),
        );
        let t = Instant::now();
        let stats = store
            .update_from_log(TreeId(1), &document, &labels, &log)
            .expect("log matches document");
        let wall = t.elapsed();
        println!(
            "batch of {batch:>4} edits: updated in {wall:>9.2?}  \
             (Δ+ {:>5} grams in {:>9.2?}, Δ- {:>5} grams in {:>9.2?}, apply {:>9.2?})",
            stats.plus_grams, stats.delta_plus, stats.minus_grams, stats.delta_minus, stats.apply,
        );
    }

    // Verify the persistent index equals a from-scratch rebuild.
    let t = Instant::now();
    let rebuilt = build_index(&document, &labels, params);
    let rebuild_time = t.elapsed();
    let stored = store
        .tree_index(TreeId(1))
        .expect("read back")
        .expect("present");
    assert_eq!(
        stored, rebuilt,
        "incremental maintenance must equal rebuild"
    );
    println!(
        "\nverified: stored index equals full rebuild (rebuild alone took {rebuild_time:.2?})"
    );

    // Crash-safety note: all updates above ran in rollback-journal
    // transactions; killing the process mid-update would leave the previous
    // consistent index state.
    std::fs::remove_dir_all(&dir).ok();
}
