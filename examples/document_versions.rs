//! A versioned document repository on disk: the `DocumentStore` receives
//! successive *versions* of documents (no edit logs, no instrumentation) and
//! keeps the pq-gram index current by diffing each new version against the
//! stored one — the complete production pipeline built on the paper's
//! incremental maintenance.
//!
//! ```sh
//! cargo run --release --example document_versions
//! ```

use pqgram::{build_index, DocumentStore, LabelTable, PQParams, SyncOutcome, TreeId};
use pqgram_tree::generate::xmark;
use pqgram_tree::subtree::{delete_subtree, insert_subtree, Spec};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::SeedableRng;

fn main() {
    let dir = std::env::temp_dir().join(format!("pqgram-versions-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("repository.docs");

    let params = PQParams::default();
    let mut rng = StdRng::seed_from_u64(99);
    let mut labels = LabelTable::new();

    // Three documents under management.
    let mut docs: Vec<_> = (0..3)
        .map(|_| xmark(&mut rng, &mut labels, 20_000))
        .collect();
    let mut store = DocumentStore::create(&path, params).expect("create");
    for (i, d) in docs.iter().enumerate() {
        store.put(TreeId(i as u64), d, &labels).expect("put");
    }
    println!("repository: 3 XMark-shaped documents, ~20k nodes each\n");

    // Five editing sessions; each session edits one document with realistic
    // subtree-level operations, then hands the *new version* to the store.
    for session in 1..=5u64 {
        let which = (session % 3) as usize;
        let doc = &mut docs[which];
        // Subtree-level edits: add a new person record, drop a random item.
        let person = Spec::node(
            labels.intern("person"),
            vec![
                Spec::node(
                    labels.intern("name"),
                    vec![Spec::leaf(labels.intern("New User"))],
                ),
                Spec::leaf(labels.intern("emailaddress")),
            ],
        );
        let people = doc
            .preorder(doc.root())
            .find(|&n| labels.name(doc.label(n)) == "people")
            .expect("schema");
        insert_subtree(doc, people, 1, &person).expect("insert");
        let items: Vec<_> = doc
            .preorder(doc.root())
            .filter(|&n| labels.name(doc.label(n)) == "item")
            .collect();
        if let Some(&victim) = items.choose(&mut rng) {
            delete_subtree(doc, victim).expect("delete");
        }

        let outcome = store
            .sync(TreeId(which as u64), doc, &labels)
            .expect("sync");
        match outcome {
            SyncOutcome::Incremental {
                script_len,
                optimized_len,
                stats,
            } => println!(
                "session {session}: doc {which} -> {script_len} derived edits \
                 ({optimized_len} after preprocessing), index updated in {:?}",
                stats.total()
            ),
            SyncOutcome::Reindexed => println!("session {session}: doc {which} re-indexed"),
        }
    }

    // Verify every stored index equals a rebuild, then run a lookup.
    for (i, d) in docs.iter().enumerate() {
        let stored = store
            .document_index(TreeId(i as u64))
            .expect("read")
            .expect("present");
        assert_eq!(stored, build_index(d, &labels, params), "doc {i} diverged");
    }
    let query = build_index(&docs[1], &labels, params);
    let hits = store.lookup(&query, 0.6).expect("lookup");
    println!(
        "\nlookup with doc 1's latest version: {} hits, best = doc {} at {:.4}",
        hits.len(),
        hits[0].tree_id.0,
        hits[0].distance
    );
    assert_eq!(hits[0].tree_id, TreeId(1));
    println!("all stored indexes verified against rebuilds ✓");
    std::fs::remove_dir_all(&dir).ok();
}
