//! Approximate lookup over a collection of XML documents.
//!
//! Parses a small bibliography collection (with typos, reordered fields and
//! missing elements — the data-integration scenario that motivates
//! approximate lookups), indexes it, and finds the entries most similar to a
//! query document. The pq-gram distance ranking is compared against the
//! exact (but much more expensive) Zhang–Shasha tree edit distance.
//!
//! ```sh
//! cargo run --release --example xml_similarity
//! ```

use pqgram::{
    build_index, parse_document, tree_edit_distance, ForestIndex, LabelTable, PQParams, TreeId,
};

const COLLECTION: &[(&str, &str)] = &[
    (
        "exact duplicate",
        r#"<article key="AugstenBG05">
             <author>N. Augsten</author><author>M. Boehlen</author><author>J. Gamper</author>
             <title>Approximate matching of hierarchical data using pq-grams</title>
             <year>2005</year><booktitle>VLDB</booktitle>
           </article>"#,
    ),
    (
        "typo in title",
        r#"<article key="AugstenBG05">
             <author>N. Augsten</author><author>M. Boehlen</author><author>J. Gamper</author>
             <title>Approximate matchng of hierarchical data using pq-grams</title>
             <year>2005</year><booktitle>VLDB</booktitle>
           </article>"#,
    ),
    (
        "fields reordered, one author initialized",
        r#"<article key="abg-05">
             <title>Approximate matching of hierarchical data using pq-grams</title>
             <author>Nikolaus Augsten</author><author>M. Boehlen</author><author>J. Gamper</author>
             <booktitle>VLDB</booktitle><year>2005</year>
           </article>"#,
    ),
    (
        "different paper, same venue",
        r#"<article key="GuhaJKSY02">
             <author>S. Guha</author><author>H. V. Jagadish</author>
             <title>Approximate XML joins</title>
             <year>2002</year><booktitle>SIGMOD</booktitle>
           </article>"#,
    ),
    (
        "unrelated record",
        r#"<book key="Knuth73">
             <author>D. E. Knuth</author>
             <title>The Art of Computer Programming</title>
             <publisher>Addison-Wesley</publisher><year>1973</year>
           </book>"#,
    ),
];

const QUERY: &str = r#"<article key="AugstenBG05">
     <author>N. Augsten</author><author>M. Boehlen</author><author>J. Gamper</author>
     <title>Approximate matching of hierarchical data using pq-grams</title>
     <year>2005</year><booktitle>VLDB</booktitle>
   </article>"#;

fn main() {
    let params = PQParams::new(2, 3);
    let mut labels = LabelTable::new();

    let trees: Vec<_> = COLLECTION
        .iter()
        .map(|(name, xml)| {
            (
                *name,
                parse_document(xml, &mut labels).expect("well-formed"),
            )
        })
        .collect();
    let query_tree = parse_document(QUERY, &mut labels).expect("well-formed");
    let query = build_index(&query_tree, &labels, params);

    let mut forest = ForestIndex::new();
    for (i, (_, tree)) in trees.iter().enumerate() {
        forest.insert(TreeId(i as u64), build_index(tree, &labels, params));
    }

    println!("query: the canonical pq-grams paper record\n");
    println!("{:<42} {:>10} {:>12}", "candidate", "pq-dist", "exact TED");
    println!("{}", "-".repeat(66));
    let hits = forest.lookup(&query, 1.01).expect("same params"); // keep all, ranked
    for hit in &hits {
        let (name, tree) = &trees[hit.tree_id.0 as usize];
        let ted = tree_edit_distance(&query_tree, tree);
        println!("{name:<42} {:>10.4} {ted:>12}", hit.distance);
    }

    // Sanity: the ranking by pq-gram distance follows the exact distance.
    let teds: Vec<u64> = hits
        .iter()
        .map(|h| tree_edit_distance(&query_tree, &trees[h.tree_id.0 as usize].1))
        .collect();
    let sorted_by_pq_is_sorted_by_ted = teds.windows(2).all(|w| w[0] <= w[1]);
    println!(
        "\npq-gram ranking {} the exact tree-edit-distance ranking",
        if sorted_by_pq_is_sorted_by_ted {
            "matches"
        } else {
            "differs from"
        }
    );
    let thresholded = forest.lookup(&query, 0.55).expect("same params");
    println!(
        "with tau = 0.55 the lookup returns {} of {} documents (the near-duplicates)",
        thresholded.len(),
        trees.len()
    );
}
